package experiments

import (
	"io"

	"ssdcheck/internal/core"
	"ssdcheck/internal/ssd"
	"ssdcheck/internal/trace"
)

// AblationResult quantifies what each piece of SSDcheck's model buys —
// the claims the paper makes in prose ("The allocation volume model
// substantially increases SSDcheck's accuracy on SSD D and E",
// "Calibration engine, however, quickly resolves the discrepancy",
// §V-B) as measured numbers.
type AblationResult struct {
	Rows []AblationRow
	// GCQuantileSweep shows the GC detector's eagerness trade-off on
	// SSD A: HL accuracy vs NL accuracy per quantile setting.
	GCQuantileSweep []GCQuantilePoint
}

// AblationRow is one (device, variant) accuracy measurement.
type AblationRow struct {
	Device  string
	Variant string
	NL, HL  float64
}

// GCQuantilePoint is one sweep point.
type GCQuantilePoint struct {
	Quantile float64
	NL, HL   float64
}

// Name implements Report.
func (AblationResult) Name() string { return "Ablation (extension)" }

// Render implements Report.
func (r AblationResult) Render(w io.Writer) {
	fprintf(w, "Ablation — what each model component buys (NL%% / HL%% on RW Mixed)\n")
	fprintf(w, "%-8s %-16s %8s %8s\n", "SSD", "variant", "NL%", "HL%")
	for _, row := range r.Rows {
		fprintf(w, "%-8s %-16s %8.1f %8.1f\n", row.Device, row.Variant, 100*row.NL, 100*row.HL)
	}
	fprintf(w, "GC-detector quantile sweep on SSD A:\n")
	for _, p := range r.GCQuantileSweep {
		fprintf(w, "  q=%.2f  NL %5.1f%%  HL %5.1f%%\n", p.Quantile, 100*p.NL, 100*p.HL)
	}
}

// ablationVariants are the predictor configurations compared.
var ablationVariants = []struct {
	name string
	p    core.Params
}{
	{"full", core.Params{}},
	{"no-volume-model", core.Params{IgnoreVolumes: true}},
	{"no-calibration", core.Params{NoCalibration: true}},
	{"no-gc-model", core.Params{NoGCModel: true}},
}

// Ablation measures prediction accuracy with model components removed,
// on the multi-volume devices (where the volume model matters) and on
// SSD A (where the GC model and calibrator carry the load).
func Ablation(o Opts) AblationResult {
	o = o.WithDefaults()
	n := o.n(40000)
	var res AblationResult

	// Every (device, variant) cell and every sweep point diagnoses its own
	// fresh device, so all of them fan out together. A failed diagnosis
	// yields a nil row, which the in-order assembly skips — the same rows
	// the serial loops emitted, in the same order.
	ablDevs := []string{"A", "D", "E"}
	quantiles := []float64{0.1, 0.25, 0.35, 0.5, 0.75, 0.9}
	nv := len(ablationVariants)
	rows := make([]*AblationRow, len(ablDevs)*nv)
	points := make([]*GCQuantilePoint, len(quantiles))
	units := make([]func(), 0, len(rows)+len(points))
	for k := range rows {
		k := k
		units = append(units, func() {
			devName, variant := ablDevs[k/nv], ablationVariants[k%nv]
			seed := o.Seed + uint64(devName[0])*7
			cfg, _ := ssd.Preset(devName, seed)
			dev, feats, now, err := diagnosedDevice(cfg, seed)
			if err != nil {
				return
			}
			pr := core.NewPredictor(feats, variant.p)
			reqs := trace.Generate(trace.RWMixed, dev.CapacitySectors(), seed+3, n)
			rep := core.Evaluate(dev, pr, reqs, now)
			rows[k] = &AblationRow{
				Device:  "SSD " + devName,
				Variant: variant.name,
				NL:      rep.NLAccuracy(),
				HL:      rep.HLAccuracy(),
			}
		})
	}
	for k := range points {
		k := k
		units = append(units, func() {
			seed := o.Seed + 1001
			cfg, _ := ssd.Preset("A", seed)
			dev, feats, now, err := diagnosedDevice(cfg, seed)
			if err != nil {
				return
			}
			pr := core.NewPredictor(feats, core.Params{GCQuantile: quantiles[k]})
			reqs := trace.Generate(trace.RWMixed, dev.CapacitySectors(), seed+3, n)
			rep := core.Evaluate(dev, pr, reqs, now)
			points[k] = &GCQuantilePoint{
				Quantile: quantiles[k], NL: rep.NLAccuracy(), HL: rep.HLAccuracy(),
			}
		})
	}
	runParUnits(o, units)

	for _, row := range rows {
		if row != nil {
			res.Rows = append(res.Rows, *row)
		}
	}
	for _, p := range points {
		if p != nil {
			res.GCQuantileSweep = append(res.GCQuantileSweep, *p)
		}
	}
	return res
}
