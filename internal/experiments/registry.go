package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Runner produces one Report.
type Runner func(Opts) Report

// Registry maps experiment identifiers to runners.
var Registry = map[string]Runner{
	"fig1":      func(o Opts) Report { return Fig01(o) },
	"fig3":      func(o Opts) Report { return Fig03(o) },
	"fig4":      func(o Opts) Report { return Fig04(o) },
	"fig5":      func(o Opts) Report { return Fig05(o) },
	"fig6":      func(o Opts) Report { return Fig06(o) },
	"fig11":     func(o Opts) Report { return Fig11(o) },
	"fig12":     func(o Opts) Report { return Fig12(o) },
	"fig13":     func(o Opts) Report { return Fig13(o) },
	"fig14":     func(o Opts) Report { return Fig14(o) },
	"fig15":     func(o Opts) Report { return Fig15(o) },
	"table1":    func(o Opts) Report { return Table1(o) },
	"ablation":  func(o Opts) Report { return Ablation(o) },
	"slc":       func(o Opts) Report { return SLCExtension(o) },
	"fios":      func(o Opts) Report { return FIOS(o) },
	"qdsweep":   func(o Opts) Report { return QDSweep(o) },
	"table2":    func(o Opts) Report { return Table2(o) },
	"table3":    func(o Opts) Report { return Table3(o) },
	"ecvol":     func(o Opts) Report { return ECVol(o) },
	"failover":  func(o Opts) Report { return ClusterFailover(o) },
	"partition": func(o Opts) Report { return Partition(o) },
	"quorum":    func(o Opts) Report { return Quorum(o) },
}

// Names returns the registered experiment identifiers in a stable order.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by identifier and renders it to w.
func Run(name string, o Opts, w io.Writer) error {
	r, ok := Registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	rep := r(o)
	rep.Render(w)
	return nil
}

// RunJSON executes one experiment and writes its structured result as
// JSON (the result types are plain exported structs).
func RunJSON(name string, o Opts, w io.Writer) error {
	r, ok := Registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	rep := r(o)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"experiment": name, "artifact": rep.Name(), "result": rep})
}

// RunMany executes the named experiments concurrently and renders them
// to w in stable registry order (duplicates removed). All experiments
// share one worker pool sized by o.Workers, so total parallelism stays
// bounded no matter how many experiments run at once. Output streams:
// each experiment renders into its own buffer and is printed as soon as
// it and every experiment before it have finished — byte-identical to
// running them serially in the same order. With more than one name,
// each render gets the same "==== name ====" header RunAll prints.
func RunMany(names []string, o Opts, w io.Writer) error {
	uniq := make([]string, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if _, ok := Registry[name]; !ok {
			return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
		}
		if !seen[name] {
			seen[name] = true
			uniq = append(uniq, name)
		}
	}
	sort.Strings(uniq)

	o = o.WithDefaults()
	if o.pool == nil {
		o.pool = make(chan struct{}, o.workerCount())
	}

	type outcome struct {
		buf      bytes.Buffer
		panicked any
		done     chan struct{}
	}
	outs := make([]*outcome, len(uniq))
	for i, name := range uniq {
		out := &outcome{done: make(chan struct{})}
		outs[i] = out
		go func(name string) {
			defer close(out.done)
			defer func() { out.panicked = recover() }()
			if len(uniq) > 1 {
				fprintf(&out.buf, "==== %s ====\n", name)
			}
			Registry[name](o).Render(&out.buf)
			if len(uniq) > 1 {
				fprintf(&out.buf, "\n")
			}
		}(name)
	}
	for _, out := range outs {
		<-out.done
		if _, err := w.Write(out.buf.Bytes()); err != nil {
			return err
		}
		if out.panicked != nil {
			panic(out.panicked)
		}
	}
	return nil
}

// RunAll executes every experiment concurrently, rendering in a stable
// order.
func RunAll(o Opts, w io.Writer) {
	_ = RunMany(Names(), o, w)
}
