package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Runner produces one Report.
type Runner func(Opts) Report

// Registry maps experiment identifiers to runners.
var Registry = map[string]Runner{
	"fig1":     func(o Opts) Report { return Fig01(o) },
	"fig3":     func(o Opts) Report { return Fig03(o) },
	"fig4":     func(o Opts) Report { return Fig04(o) },
	"fig5":     func(o Opts) Report { return Fig05(o) },
	"fig6":     func(o Opts) Report { return Fig06(o) },
	"fig11":    func(o Opts) Report { return Fig11(o) },
	"fig12":    func(o Opts) Report { return Fig12(o) },
	"fig13":    func(o Opts) Report { return Fig13(o) },
	"fig14":    func(o Opts) Report { return Fig14(o) },
	"fig15":    func(o Opts) Report { return Fig15(o) },
	"table1":   func(o Opts) Report { return Table1(o) },
	"ablation": func(o Opts) Report { return Ablation(o) },
	"slc":      func(o Opts) Report { return SLCExtension(o) },
	"fios":     func(o Opts) Report { return FIOS(o) },
	"qdsweep":  func(o Opts) Report { return QDSweep(o) },
	"table2":   func(o Opts) Report { return Table2(o) },
	"table3":   func(o Opts) Report { return Table3(o) },
}

// Names returns the registered experiment identifiers in a stable order.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by identifier and renders it to w.
func Run(name string, o Opts, w io.Writer) error {
	r, ok := Registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	rep := r(o)
	rep.Render(w)
	return nil
}

// RunJSON executes one experiment and writes its structured result as
// JSON (the result types are plain exported structs).
func RunJSON(name string, o Opts, w io.Writer) error {
	r, ok := Registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	rep := r(o)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"experiment": name, "artifact": rep.Name(), "result": rep})
}

// RunAll executes every experiment in a stable order.
func RunAll(o Opts, w io.Writer) {
	for _, name := range Names() {
		fprintf(w, "==== %s ====\n", name)
		_ = Run(name, o, w)
		fprintf(w, "\n")
	}
}
