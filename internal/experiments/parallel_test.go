package experiments

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
)

// TestWorkersByteIdentical is the determinism regression test for the
// parallel runner: every registered experiment must render exactly the
// same bytes at workers=1 and workers=8 for the same seed. Run under
// -race in CI, it also shakes out data races between units.
func TestWorkersByteIdentical(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var serial, parallel bytes.Buffer
			if err := Run(name, Opts{Seed: 42, Scale: 0.2, Workers: 1}, &serial); err != nil {
				t.Fatal(err)
			}
			if err := Run(name, Opts{Seed: 42, Scale: 0.2, Workers: 8}, &parallel); err != nil {
				t.Fatal(err)
			}
			if serial.String() != parallel.String() {
				t.Errorf("render differs between workers=1 and workers=8:\n--- workers=1\n%s\n--- workers=8\n%s",
					serial.String(), parallel.String())
			}
		})
	}
}

func TestRunParOrder(t *testing.T) {
	got := runPar(Opts{Workers: 8}, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d]=%d want %d", i, v, i*i)
		}
	}
}

func TestRunParBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int32
	runPar(Opts{Workers: 3}, 64, func(i int) struct{} {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		cur.Add(-1)
		return struct{}{}
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent units with Workers=3", p)
	}
}

func TestRunParPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom 7" {
			t.Fatalf("recovered %v, want the unit's panic", r)
		}
	}()
	runPar(Opts{Workers: 4}, 16, func(i int) int {
		if i == 7 {
			panic("boom 7")
		}
		return i
	})
	t.Fatal("runPar did not re-panic")
}

// TestRunManyStableOrder pins the streaming contract: experiments run
// concurrently, but renders come out in sorted registry order with the
// same headers RunAll prints, byte-identical to running them serially.
func TestRunManyStableOrder(t *testing.T) {
	names := []string{"table2", "fig4", "fig6", "fig4"} // unsorted, with a duplicate
	o := Opts{Seed: 42, Scale: 0.25, Workers: 4}

	var want bytes.Buffer
	for _, name := range []string{"fig4", "fig6", "table2"} {
		fprintf(&want, "==== %s ====\n", name)
		if err := Run(name, o, &want); err != nil {
			t.Fatal(err)
		}
		fprintf(&want, "\n")
	}

	var got bytes.Buffer
	if err := RunMany(names, o, &got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("RunMany output differs from serial order:\n--- got\n%s\n--- want\n%s", got.String(), want.String())
	}

	// A single name renders bare, exactly like Run.
	var single, direct bytes.Buffer
	if err := RunMany([]string{"fig6"}, o, &single); err != nil {
		t.Fatal(err)
	}
	if err := Run("fig6", o, &direct); err != nil {
		t.Fatal(err)
	}
	if single.String() != direct.String() {
		t.Errorf("single-name RunMany differs from Run:\n%s\nvs\n%s", single.String(), direct.String())
	}
	if strings.Contains(single.String(), "====") {
		t.Error("single-name RunMany printed a header")
	}
}

func TestRunManyUnknownName(t *testing.T) {
	var buf bytes.Buffer
	if err := RunMany([]string{"fig6", "nope"}, Opts{Seed: 1, Scale: 0.2}, &buf); err == nil {
		t.Fatal("unknown experiment should error")
	}
	if buf.Len() != 0 {
		t.Fatalf("RunMany wrote output despite the error: %q", buf.String())
	}
}
