package experiments

import (
	"io"
	"time"

	"ssdcheck/internal/blockdev"
	"ssdcheck/internal/core"
	"ssdcheck/internal/extract"
	"ssdcheck/internal/host"
	"ssdcheck/internal/sched"
	"ssdcheck/internal/ssd"
	"ssdcheck/internal/trace"
)

// QDSweepResult is an extension study: PAS vs noop across device queue
// depths (in-flight limit). The host-side queue reorders at any depth,
// so PAS wins everywhere; deeper device concurrency drains backlogs
// faster and shrinks everyone's absolute tails, narrowing — but not
// closing — the gap.
type QDSweepResult struct {
	Device, Workload string
	Points           []QDPoint
}

// QDPoint is one depth's comparison.
type QDPoint struct {
	Depth             int
	NoopTail, PASTail time.Duration // read tail at the flush point
	TailRatio         float64       // PAS / noop
	NoopMBps, PASMBps float64
}

// Name implements Report.
func (QDSweepResult) Name() string { return "QD sweep (extension)" }

// Render implements Report.
func (r QDSweepResult) Render(w io.Writer) {
	fprintf(w, "Queue-depth sweep — PAS vs noop, %s on %s (read tail at flush point)\n", r.Workload, r.Device)
	fprintf(w, "%5s %12s %12s %8s %10s %10s\n", "depth", "noop tail", "pas tail", "ratio", "noop MB/s", "pas MB/s")
	for _, p := range r.Points {
		fprintf(w, "%5d %12s %12s %7.2fx %10.2f %10.2f\n",
			p.Depth, p.NoopTail.Round(10*time.Microsecond), p.PASTail.Round(10*time.Microsecond),
			p.TailRatio, p.NoopMBps, p.PASMBps)
	}
}

// QDSweep runs Build on SSD G across queue depths.
func QDSweep(o Opts) QDSweepResult {
	o = o.WithDefaults()
	res := QDSweepResult{Device: "SSD G", Workload: "Build"}
	seed := o.Seed + 17

	// The diagnosis runs as a single pooled unit (bounded when several
	// experiments share a pool); the sweep then reads feats without
	// mutating it, so every (depth, scheduler) run fans out at once.
	cfg, _ := ssd.Preset("G", seed)
	var feats *extract.Features
	var err error
	runParUnits(o, []func(){func() {
		_, feats, _, err = diagnosedDevice(cfg, seed)
	}})
	if err != nil {
		panic(err)
	}

	run := func(depth int, pas bool) ([]host.Record, float64) {
		dev, now := preparedDevice(cfg, seed)
		var s host.Scheduler
		if pas {
			s = sched.NewPAS(core.NewPredictor(feats, core.Params{}))
		} else {
			s = sched.NewNoop()
		}
		reqs := trace.Generate(trace.Build, dev.CapacitySectors(), seed+5, o.n(12000))
		gap, now := host.CalibrateMeanGap(dev, trace.Build, seed+6, o.n(1500), 0.45, now)
		arr := host.OpenLoopArrivals(reqs, gap, seed+7)
		for i := range arr {
			arr[i].At += now
		}
		recs := host.DriveQD(dev, s, arr, depth)
		return host.FilterOp(recs, blockdev.Read), host.Summarize(recs).ThroughputMBps
	}

	depths := []int{1, 4, 8, 16}
	type sweepRun struct {
		reads []host.Record
		mbps  float64
	}
	runs := runPar(o, len(depths)*2, func(k int) sweepRun {
		reads, mbps := run(depths[k/2], k%2 == 1)
		return sweepRun{reads: reads, mbps: mbps}
	})
	for i, depth := range depths {
		noop, pas := runs[i*2], runs[i*2+1]
		q := flushPercentile(noop.reads)
		p := QDPoint{
			Depth:    depth,
			NoopTail: time.Duration(host.PercentileLatency(noop.reads, q)),
			PASTail:  time.Duration(host.PercentileLatency(pas.reads, q)),
			NoopMBps: noop.mbps,
			PASMBps:  pas.mbps,
		}
		if p.NoopTail > 0 {
			p.TailRatio = float64(p.PASTail) / float64(p.NoopTail)
		}
		res.Points = append(res.Points, p)
	}
	return res
}
