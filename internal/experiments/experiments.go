// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated substrate. Each experiment is a pure
// function of its options, returns structured rows, and can render
// itself as text; cmd/experiments prints them and the repository-level
// benchmarks wrap them.
//
// Absolute numbers differ from the paper (the substrate is a simulator,
// not the authors' testbed); the reproduced quantity is the shape — who
// wins, by what rough factor, where the crossovers sit. EXPERIMENTS.md
// records paper-vs-measured for every row.
package experiments

import (
	"fmt"
	"io"
	"time"

	"ssdcheck/internal/extract"
	"ssdcheck/internal/simclock"
	"ssdcheck/internal/ssd"
	"ssdcheck/internal/trace"
)

// Opts control every experiment.
type Opts struct {
	// Seed drives all randomness; equal seeds give identical reports.
	Seed uint64
	// Scale multiplies request counts (1.0 = the defaults used in
	// EXPERIMENTS.md; benches use smaller scales).
	Scale float64
	// Workers bounds how many independent experiment units (devices,
	// variants, cells) run concurrently; 0 means GOMAXPROCS. Results
	// are always assembled in input order, so rendered output is
	// byte-identical at any worker count.
	Workers int

	// pool, when non-nil, is a token pool shared across experiments
	// running concurrently (RunMany), so the worker bound holds
	// process-wide rather than per experiment.
	pool chan struct{}
}

// WithDefaults fills zero fields.
func (o Opts) WithDefaults() Opts {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	return o
}

func (o Opts) n(base int) int {
	n := int(float64(base) * o.Scale)
	if n < 100 {
		n = 100
	}
	return n
}

// Report is one regenerated table or figure.
type Report interface {
	// Name returns the paper artifact this reproduces ("Fig. 11", ...).
	Name() string
	// Render writes the rows as text.
	Render(w io.Writer)
}

// diagOpts are the diagnosis probe sizes experiments use. The scan
// covers bits 13..19 — comfortably around the ground-truth volume bits
// 17/18 — at sample sizes that keep a full 7-device diagnosis around a
// second.
func diagOpts(seed uint64) extract.Opts {
	return extract.Opts{
		Seed:              seed,
		MinBit:            13,
		MaxBit:            19,
		AllocWritesPerBit: 2500,
		GCIntervals:       40,
		Thinktimes:        []time.Duration{500 * time.Microsecond, time.Millisecond},
	}
}

// preparedDevice preconditions a preset and returns it with its clock.
func preparedDevice(cfg ssd.Config, seed uint64) (*ssd.Device, simclock.Time) {
	dev := ssd.MustNew(cfg)
	now := trace.Precondition(dev, seed, 1.3, 0)
	return dev, now
}

// diagnosedDevice additionally runs the full diagnosis.
func diagnosedDevice(cfg ssd.Config, seed uint64) (*ssd.Device, *extract.Features, simclock.Time, error) {
	dev, now := preparedDevice(cfg, seed)
	f, now, err := extract.Run(dev, now, diagOpts(seed))
	return dev, f, now, err
}

func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
