package experiments

import (
	"io"
	"time"

	"ssdcheck/internal/blockdev"
	"ssdcheck/internal/extract"
	"ssdcheck/internal/ftl"
	"ssdcheck/internal/ssd"
	"ssdcheck/internal/stats"
	"ssdcheck/internal/trace"
)

// Fig04Result reproduces the allocation-volume scan of Fig. 4:
// throughput versus fixed LBA bit index on a single-volume and a
// two-volume device.
type Fig04Result struct {
	Devices []Fig04Device
}

// Fig04Device is one device's scan.
type Fig04Device struct {
	Name         string
	BaselineMBps float64
	Points       []extract.BitThroughput
	DetectedBits []int
}

// Name implements Report.
func (Fig04Result) Name() string { return "Fig. 4" }

// Render implements Report.
func (r Fig04Result) Render(w io.Writer) {
	fprintf(w, "Fig. 4 — throughput vs fixed bit index\n")
	for _, d := range r.Devices {
		fprintf(w, "%s (baseline %.1f MB/s, detected volume bits %v)\n", d.Name, d.BaselineMBps, d.DetectedBits)
		for _, p := range d.Points {
			fprintf(w, "  bit %2d: %7.2f MB/s  ratio %.2f\n", p.Bit, p.MBps, p.Ratio)
		}
	}
}

// Fig04 runs the allocation-volume diagnosis scan on SSD A (one volume)
// and SSD D (two volumes, index 17).
func Fig04(o Opts) Fig04Result {
	o = o.WithDefaults()
	names := []string{"A", "D"}
	devices := runPar(o, len(names), func(i int) Fig04Device {
		cfg, _ := ssd.Preset(names[i], o.Seed)
		dev, now := preparedDevice(cfg, o.Seed)
		s := extract.NewSession(dev, now, o.Seed+1)
		do := diagOpts(o.Seed).WithDefaults(dev.CapacitySectors())
		extract.CalibrateThresholds(s)
		scan := extract.ScanAllocationVolumes(s, do)
		return Fig04Device{
			Name:         dev.Name(),
			BaselineMBps: scan.BaselineMBps,
			Points:       scan.Points,
			DetectedBits: scan.VolumeBits,
		}
	})
	return Fig04Result{Devices: devices}
}

// Fig05Result reproduces the GC-volume scan of Fig. 5: Fixed-pattern GC
// interval distribution and chi-squared p-values per bit.
type Fig05Result struct {
	Devices []Fig05Device
}

// Fig05Device is one device's scan.
type Fig05Device struct {
	Name           string
	FixedCDF       []stats.CDFPoint // GC-interval CDF (writes), Fig. 5a
	PValues        []extract.BitPValue
	DetectedBits   []int
	GCOverheadMs   float64
	FixedIntervals int
}

// Name implements Report.
func (Fig05Result) Name() string { return "Fig. 5" }

// Render implements Report.
func (r Fig05Result) Render(w io.Writer) {
	fprintf(w, "Fig. 5 — GC-volume identification (Fixed vs Flip_x chi-squared)\n")
	for _, d := range r.Devices {
		fprintf(w, "%s: %d Fixed intervals, GC stall ~%.1fms, detected bits %v\n",
			d.Name, d.FixedIntervals, d.GCOverheadMs, d.DetectedBits)
		for _, p := range d.PValues {
			fprintf(w, "  bit %2d: p=%.4f\n", p.Bit, p.PValue)
		}
	}
}

// Fig05 runs the GC-volume diagnosis on SSDs A, D and E.
func Fig05(o Opts) Fig05Result {
	o = o.WithDefaults()
	names := []string{"A", "D", "E"}
	devices := runPar(o, len(names), func(i int) Fig05Device {
		cfg, _ := ssd.Preset(names[i], o.Seed)
		dev, now := preparedDevice(cfg, o.Seed)
		s := extract.NewSession(dev, now, o.Seed+2)
		do := diagOpts(o.Seed).WithDefaults(dev.CapacitySectors())
		extract.CalibrateThresholds(s)
		alloc := extract.ScanAllocationVolumes(s, do)
		scan := extract.ScanGCVolumes(s, do, alloc.VolumeBits)

		var ivs stats.Sample
		for _, iv := range scan.FixedIntervals {
			ivs.Add(iv)
		}
		return Fig05Device{
			Name:           dev.Name(),
			FixedCDF:       ivs.CDF(16),
			PValues:        scan.Points,
			DetectedBits:   scan.VolumeBits,
			GCOverheadMs:   float64(scan.Overhead) / 1e6,
			FixedIntervals: len(scan.FixedIntervals),
		}
	})
	return Fig05Result{Devices: devices}
}

// Fig06Result reproduces the write-buffer profile of Fig. 6: periodic HL
// reads expose the buffer size.
type Fig06Result struct {
	Device         string
	PeriodWrites   int
	BufferKB       int
	StallMs        float64
	ThinktimesUsed []time.Duration
}

// Name implements Report.
func (Fig06Result) Name() string { return "Fig. 6" }

// Render implements Report.
func (r Fig06Result) Render(w io.Writer) {
	fprintf(w, "Fig. 6 — write-buffer profiling on %s\n", r.Device)
	fprintf(w, "HL-read period: %d writes -> buffer %d KB (drain stall ~%.2f ms, consistent across %v)\n",
		r.PeriodWrites, r.BufferKB, r.StallMs, r.ThinktimesUsed)
}

// Fig06 runs the background-read buffer probe on SSD A.
func Fig06(o Opts) Fig06Result {
	o = o.WithDefaults()
	cfg := ssd.PresetA(o.Seed)
	dev, now := preparedDevice(cfg, o.Seed)
	s := extract.NewSession(dev, now, o.Seed+3)
	do := diagOpts(o.Seed).WithDefaults(dev.CapacitySectors())
	readThr, writeThr := extract.CalibrateThresholds(s)
	buf := extract.AnalyzeWriteBuffer(s, do, nil, readThr, writeThr)
	return Fig06Result{
		Device:         dev.Name(),
		PeriodWrites:   buf.Bytes / 4096,
		BufferKB:       buf.Bytes / 1024,
		StallMs:        float64(buf.FlushOverhead) / 1e6,
		ThinktimesUsed: do.Thinktimes,
	}
}

// Table1Result reproduces Table I: the features extracted from every
// preset, with a ground-truth comparison the paper could not print.
type Table1Result struct {
	Rows []Table1Row
}

// Table1Row is one device's extraction outcome.
type Table1Row struct {
	Device   string
	Features *extract.Features
	// Match reports whether extraction recovered the simulator's
	// ground-truth configuration exactly.
	Match bool
	Err   error
}

// Name implements Report.
func (Table1Result) Name() string { return "Table I" }

// Render implements Report.
func (r Table1Result) Render(w io.Writer) {
	fprintf(w, "Table I — extracted internal features\n")
	fprintf(w, "%-8s %-14s %-8s %-8s %-12s %s\n", "SSD", "volumes(idx)", "buffer", "type", "flush", "ground truth")
	for _, row := range r.Rows {
		if row.Err != nil {
			fprintf(w, "%-8s diagnosis failed: %v\n", row.Device, row.Err)
			continue
		}
		status := "MATCH"
		if !row.Match {
			status = "MISMATCH"
		}
		fprintf(w, "%s   [%s]\n", row.Features.TableRow(row.Device), status)
	}
}

// Table1 runs the full diagnosis on all seven presets and checks the
// result against the simulator's ground truth.
func Table1(o Opts) Table1Result {
	o = o.WithDefaults()
	rows := runPar(o, len(ssd.PresetNames), func(i int) Table1Row {
		name := ssd.PresetNames[i]
		cfg, _ := ssd.Preset(name, o.Seed+uint64(i)*31)
		_, feats, _, err := diagnosedDevice(cfg, o.Seed+uint64(i)*17)
		row := Table1Row{Device: "SSD " + name, Features: feats, Err: err}
		if err == nil {
			row.Match = matchGroundTruth(cfg, feats)
		}
		return row
	})
	return Table1Result{Rows: rows}
}

func matchGroundTruth(cfg ssd.Config, f *extract.Features) bool {
	if len(f.VolumeBits) != len(cfg.VolumeBits) {
		return false
	}
	want := append([]int(nil), cfg.VolumeBits...)
	for i := range want {
		if f.VolumeBits[i] != want[i] {
			return false
		}
	}
	if f.BufferBytes != cfg.BufferBytes {
		return false
	}
	wantFore := cfg.BufferType == ftl.BufferFore
	if (f.BufferKind == extract.BufferFore) != wantFore {
		return false
	}
	hasRT := false
	for _, a := range f.FlushAlgorithms {
		if a == extract.FlushReadTrigger {
			hasRT = true
		}
	}
	return hasRT == cfg.ReadTriggerFlush
}

// Table2Result reproduces Table II: the generated workloads'
// characteristics versus their published targets.
type Table2Result struct {
	Rows []Table2Row
}

// Table2Row is one workload's characterization.
type Table2Row struct {
	Name                   string
	Requests               int
	WriteFrac, RandomFrac  float64
	TargetWrite, TargetRnd float64
}

// Name implements Report.
func (Table2Result) Name() string { return "Table II" }

// Render implements Report.
func (r Table2Result) Render(w io.Writer) {
	fprintf(w, "Table II — workload characteristics (measured vs target)\n")
	fprintf(w, "%-10s %10s %18s %18s\n", "trace", "requests", "writes", "random")
	for _, row := range r.Rows {
		fprintf(w, "%-10s %10d %8.1f%%/%5.1f%% %9.1f%%/%5.1f%%\n",
			row.Name, row.Requests, 100*row.WriteFrac, 100*row.TargetWrite,
			100*row.RandomFrac, 100*row.TargetRnd)
	}
}

// Table2 characterizes a sample of every evaluation workload.
func Table2(o Opts) Table2Result {
	o = o.WithDefaults()
	rows := runPar(o, len(trace.Workloads), func(i int) Table2Row {
		spec := trace.Workloads[i]
		reqs := trace.Generate(spec, 1<<20, o.Seed+5, o.n(40000))
		ch := trace.Characterize(reqs)
		return Table2Row{
			Name: spec.Name, Requests: spec.Requests,
			WriteFrac: ch.WriteFrac, RandomFrac: ch.RandomFrac,
			TargetWrite: spec.WriteFrac, TargetRnd: spec.RandomFrac,
		}
	})
	return Table2Result{Rows: rows}
}

// Table3Result reproduces Table III: the latency distribution of Web on
// SSD A against the 250 µs / 3500 µs / 10 ms buckets.
type Table3Result struct {
	ReadBuckets  [4]float64 // <250us, <3500us, <10ms, >=10ms
	WriteBuckets [4]float64
}

// Name implements Report.
func (Table3Result) Name() string { return "Table III" }

// Render implements Report.
func (r Table3Result) Render(w io.Writer) {
	fprintf(w, "Table III — latency distribution of Web on SSD A\n")
	fprintf(w, "%-7s %9s %9s %9s %9s\n", "", "<250us", "<3500us", "<10ms", ">=10ms")
	fprintf(w, "%-7s %8.2f%% %8.2f%% %8.2f%% %8.2f%%\n", "read",
		100*r.ReadBuckets[0], 100*r.ReadBuckets[1], 100*r.ReadBuckets[2], 100*r.ReadBuckets[3])
	fprintf(w, "%-7s %8.2f%% %8.2f%% %8.2f%% %8.2f%%\n", "write",
		100*r.WriteBuckets[0], 100*r.WriteBuckets[1], 100*r.WriteBuckets[2], 100*r.WriteBuckets[3])
}

// Table3 replays Web on SSD A and buckets the latencies. A modest
// thinktime stands in for the trace's natural arrival pacing (a flat-out
// QD1 replay would keep the write buffer permanently draining and shift
// the whole read distribution, which no real trace replay does).
func Table3(o Opts) Table3Result {
	o = o.WithDefaults()
	dev, now := preparedDevice(ssd.PresetA(o.Seed), o.Seed)
	gen := trace.NewGenerator(trace.Web, dev.CapacitySectors(), o.Seed+9)
	log, _ := trace.ReplayGenerator(dev, gen, o.n(60000), trace.ReplayOptions{Start: now, Thinktime: 3 * time.Millisecond})

	var res Table3Result
	var nr, nw float64
	for _, c := range log {
		lat := time.Duration(c.Latency())
		b := 3
		switch {
		case lat < 250*time.Microsecond:
			b = 0
		case lat < 3500*time.Microsecond:
			b = 1
		case lat < 10*time.Millisecond:
			b = 2
		}
		if c.Req.Op == blockdev.Read {
			res.ReadBuckets[b]++
			nr++
		} else {
			res.WriteBuckets[b]++
			nw++
		}
	}
	for i := range res.ReadBuckets {
		if nr > 0 {
			res.ReadBuckets[i] /= nr
		}
		if nw > 0 {
			res.WriteBuckets[i] /= nw
		}
	}
	return res
}
