package experiments

import (
	"io"

	"ssdcheck/internal/ssd"
	"ssdcheck/internal/stats"
	"ssdcheck/internal/trace"
)

// Fig01Result reproduces Fig. 1: irregular behaviors in commodity SSDs —
// (a) long latency tails per device, (b) throughput fluctuation over
// time and across devices.
type Fig01Result struct {
	Devices []Fig01Device
}

// Fig01Device is one SSD's row.
type Fig01Device struct {
	Name          string
	CDF           []stats.CDFPoint // latency CDF in microseconds
	MedianUs      float64
	P99Us, P999Us float64
	MeanMBps      float64
	ThroughputCoV float64 // fluctuation measure of Fig. 1b
}

// Name implements Report.
func (Fig01Result) Name() string { return "Fig. 1" }

// Render implements Report.
func (r Fig01Result) Render(w io.Writer) {
	fprintf(w, "Fig. 1 — irregular behaviors (random 4KB writes+reads)\n")
	fprintf(w, "%-8s %10s %10s %10s %10s %8s\n", "SSD", "median(us)", "p99(us)", "p99.9(us)", "MB/s", "CoV")
	for _, d := range r.Devices {
		fprintf(w, "%-8s %10.1f %10.1f %10.1f %10.2f %8.3f\n",
			d.Name, d.MedianUs, d.P99Us, d.P999Us, d.MeanMBps, d.ThroughputCoV)
	}
}

// Fig01 runs the synthetic random write+read benchmark of Fig. 1 on
// three commodity presets and summarizes tails and throughput
// fluctuation.
func Fig01(o Opts) Fig01Result {
	o = o.WithDefaults()
	names := []string{"A", "D", "F"}
	devices := runPar(o, len(names), func(i int) Fig01Device {
		cfg, err := ssd.Preset(names[i], o.Seed)
		if err != nil {
			panic(err)
		}
		dev, now := preparedDevice(cfg, o.Seed)
		gen := trace.NewGenerator(trace.RWMixed, dev.CapacitySectors(), o.Seed+7)
		log, _ := trace.ReplayGenerator(dev, gen, o.n(60000), trace.ReplayOptions{Start: now})

		var lat stats.Sample
		ts := stats.NewThroughputSeries(0.2)
		for _, c := range log {
			lat.Add(c.Latency().Sub(0).Seconds() * 1e6)
			ts.Record(c.Done.Sub(now).Seconds(), c.Req.Bytes())
		}
		return Fig01Device{
			Name:          dev.Name(),
			CDF:           lat.CDF(40),
			MedianUs:      lat.Percentile(50),
			P99Us:         lat.Percentile(99),
			P999Us:        lat.Percentile(99.9),
			MeanMBps:      ts.Mean(),
			ThroughputCoV: ts.CoefficientOfVariation(),
		}
	})
	return Fig01Result{Devices: devices}
}
