package experiments

import (
	"io"
	"time"

	"ssdcheck/internal/blockdev"
	"ssdcheck/internal/core"
	"ssdcheck/internal/host"
	"ssdcheck/internal/sched"
	"ssdcheck/internal/ssd"
	"ssdcheck/internal/trace"
)

// FIOSResult measures the paper's §VII suggestion: FIOS (FAST '12)
// schedules under the blanket assumption that reads issued after writes
// are always slow, batching writes and holding reads back; SSDcheck's
// per-request prediction lifts the assumption, releasing reads that
// would be fast anyway. Reported per workload on SSD A.
type FIOSResult struct {
	Rows []FIOSRow
}

// FIOSRow is one workload's comparison.
type FIOSRow struct {
	Workload                  string
	ClassicP50, ClassicP95    time.Duration // read latency, classic FIOS
	AssistedP50, AssistedP95  time.Duration // read latency, FIOS+SSDcheck
	ClassicMBps, AssistedMBps float64
}

// Name implements Report.
func (FIOSResult) Name() string { return "FIOS extension" }

// Render implements Report.
func (r FIOSResult) Render(w io.Writer) {
	fprintf(w, "FIOS + SSDcheck (paper §VII) — read latency on SSD A\n")
	fprintf(w, "%-10s %22s %22s %18s\n", "workload", "classic p50/p95", "assisted p50/p95", "thpt MB/s (c/a)")
	for _, row := range r.Rows {
		fprintf(w, "%-10s %10s /%10s %10s /%10s %8.2f /%7.2f\n",
			row.Workload,
			row.ClassicP50.Round(time.Microsecond), row.ClassicP95.Round(10*time.Microsecond),
			row.AssistedP50.Round(time.Microsecond), row.AssistedP95.Round(10*time.Microsecond),
			row.ClassicMBps, row.AssistedMBps)
	}
}

// FIOS runs the comparison over the mixed workloads.
func FIOS(o Opts) FIOSResult {
	o = o.WithDefaults()
	var res FIOSResult
	specs := []trace.Spec{trace.Web, trace.TPCE, trace.Build}

	run := func(spec trace.Spec, assisted bool) (time.Duration, time.Duration, float64) {
		seed := o.Seed + uint64(len(spec.Name))*59
		cfg := ssd.PresetA(seed)
		dev, now := preparedDevice(cfg, seed)
		var s host.Scheduler
		if assisted {
			_, feats, _, err := diagnosedDevice(cfg, seed)
			if err != nil {
				panic(err)
			}
			s = sched.NewFIOSWithPredictor(core.NewPredictor(feats, core.Params{}))
		} else {
			s = sched.NewFIOS()
		}
		// Closed loop at queue depth 16: a read always has writes
		// around it, so the hold-back assumption binds on every
		// read — the regime FIOS was designed for.
		reqs := trace.Generate(spec, dev.CapacitySectors(), seed+5, o.n(12000))
		recs := host.DriveClosedLoop(dev, s, reqs, 16, now)
		reads := host.FilterOp(recs, blockdev.Read)
		return time.Duration(host.PercentileLatency(reads, 0.5)),
			time.Duration(host.PercentileLatency(reads, 0.95)),
			host.Summarize(recs).ThroughputMBps
	}

	// Each (workload, mode) run seeds from the workload alone and uses
	// its own device, so the whole 3x2 grid fans out at once.
	rows := runPar(o, len(specs)*2, func(k int) FIOSRow {
		spec, assisted := specs[k/2], k%2 == 1
		var row FIOSRow
		if assisted {
			row.AssistedP50, row.AssistedP95, row.AssistedMBps = run(spec, true)
		} else {
			row.ClassicP50, row.ClassicP95, row.ClassicMBps = run(spec, false)
		}
		return row
	})
	for i, spec := range specs {
		c, a := rows[i*2], rows[i*2+1]
		res.Rows = append(res.Rows, FIOSRow{
			Workload:   spec.Name,
			ClassicP50: c.ClassicP50, ClassicP95: c.ClassicP95, ClassicMBps: c.ClassicMBps,
			AssistedP50: a.AssistedP50, AssistedP95: a.AssistedP95, AssistedMBps: a.AssistedMBps,
		})
	}
	return res
}
