package experiments

import (
	"fmt"
	"io"
	"time"

	"ssdcheck/internal/cluster"
	"ssdcheck/internal/faults"
	"ssdcheck/internal/fleet"
	"ssdcheck/internal/trace"
)

// PartitionMode is one run of the asymmetric-partition workload: the
// same streams, the same fault window, with the circuit breaker off or
// on.
type PartitionMode struct {
	Name string

	// Served and Failed split the per-request outcomes: a request
	// whose result carries an error (response lost, breaker open)
	// counts as failed.
	Served int64
	Failed int64

	// HLAccuracy is the merged cluster accuracy over the requests the
	// nodes actually executed.
	HLAccuracy float64

	// Transport accounting against the victim node.
	Attempts int64
	Retries  int64
	Timeouts int64

	// RPCCost is the victim's accumulated virtual submit time (each
	// lost response burns one full RPC deadline per attempt, plus
	// backoff); MaxSubmit is the costliest single operation — the
	// transport's contribution to tail latency.
	RPCCost   time.Duration
	MaxSubmit time.Duration

	// BreakerOpens counts closed/half-open → open edges.
	BreakerOpens int
}

// PartitionResult is an extension study on the networked cluster
// layer: an asymmetric partition (the victim node executes every
// submit but its responses are lost) opens mid-workload, and the same
// run is scored with the per-node circuit breaker disabled and
// enabled. Without the breaker every sub-batch addressed to the
// victim burns its full retry budget of RPC deadlines; with it the
// coordinator pays for BreakerFailures failures plus one probe per
// cooldown, and the rest of the window fast-fails locally.
type PartitionResult struct {
	Nodes, Devices int
	Victim         string
	VictimDevices  int

	// The RPCTimeout window in heartbeat rounds (1-based, inclusive
	// start), out of TotalRounds driven.
	WindowStart int64
	WindowEnd   int64
	TotalRounds int64

	Modes []PartitionMode
}

// Name implements Report.
func (PartitionResult) Name() string { return "Asymmetric partition (extension)" }

// Render implements Report.
func (r PartitionResult) Render(w io.Writer) {
	fprintf(w, "Asymmetric partition — %d devices on %d nodes; %s (%d devices) executes\n",
		r.Devices, r.Nodes, r.Victim, r.VictimDevices)
	fprintf(w, "submits but loses responses during heartbeat rounds %d..%d of %d\n",
		r.WindowStart, r.WindowEnd, r.TotalRounds)
	fprintf(w, "%-12s %8s %7s %7s %8s %9s %11s %11s %6s\n",
		"mode", "served", "failed", "HL acc", "timeouts", "retries", "rpc cost", "max submit", "opens")
	for _, m := range r.Modes {
		fprintf(w, "%-12s %8d %7d %6.1f%% %8d %9d %11s %11s %6d\n",
			m.Name, m.Served, m.Failed, 100*m.HLAccuracy,
			m.Timeouts, m.Retries, m.RPCCost.Round(time.Millisecond), m.MaxSubmit.Round(time.Millisecond),
			m.BreakerOpens)
	}
	if len(r.Modes) == 2 {
		off, on := r.Modes[0], r.Modes[1]
		if on.Timeouts > 0 && off.Timeouts > on.Timeouts {
			fprintf(w, "breaker bound the window to %d timed-out attempts (vs %d without, %.1fx less RPC time burned)\n",
				on.Timeouts, off.Timeouts, float64(off.RPCCost)/float64(max64(int64(on.RPCCost), 1)))
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Partition drives the same mixed workload through a 3-node cluster
// on the in-memory loopback transport twice — breaker disabled, then
// enabled — while an RPCTimeout fault window covers the node that
// owns the most devices. The victim keeps answering heartbeats (the
// partition is asymmetric: control plane fine, data plane
// response-lossy), so the health machine never evacuates it and only
// the breaker can stop the coordinator from burning a full retry
// budget per sub-batch.
func Partition(o Opts) PartitionResult {
	o = o.WithDefaults()
	const nNodes, nDevices = 3, 6
	const totalRounds, windowStart, windowRounds = 12, 3, 4
	seed := o.Seed + 29
	n := o.n(1200)
	if n < totalRounds {
		n = totalRounds
	}
	tickEvery := n / totalRounds

	specs := fleet.PresetDevices(nDevices, nil, seed)
	nodeCfg := fleet.Config{
		Shards:             2,
		PreconditionFactor: 1.2,
		Diagnosis:          fleet.FastDiagnosis(),
	}
	streams := make([][]fleet.Request, nDevices)
	for i, spec := range specs {
		reqs := trace.Generate(trace.RWMixed, 1<<20, seed+uint64(i)*11, n)
		streams[i] = make([]fleet.Request, n)
		for j, r := range reqs {
			streams[i][j] = fleet.Request{DeviceID: spec.ID, Op: r.Op, LBA: r.LBA, Sectors: r.Sectors}
		}
	}

	// The placement ring is a pure function of (seed, membership,
	// devices), so the victim — the node owning the most devices — is
	// computable without standing a cluster up.
	pol := cluster.Policy{Seed: seed}
	ring := cluster.NewRing(seed, 128)
	for i := 0; i < nNodes; i++ {
		ring.Add(nodeID(i))
	}
	owners := make(map[string]int, nNodes)
	for _, spec := range specs {
		if owner, ok := ring.Owner(spec.ID); ok {
			owners[owner]++
		}
	}
	victim, victimDevices := "", -1
	for i := 0; i < nNodes; i++ {
		if owners[nodeID(i)] > victimDevices {
			victim, victimDevices = nodeID(i), owners[nodeID(i)]
		}
	}

	res := PartitionResult{
		Nodes: nNodes, Devices: nDevices,
		Victim: victim, VictimDevices: victimDevices,
		WindowStart: windowStart, WindowEnd: windowStart + windowRounds - 1,
		TotalRounds: totalRounds,
	}
	for _, mode := range []struct {
		name     string
		breakers int // Policy.BreakerFailures: negative disables
	}{
		{"breaker-off", -1},
		{"breaker-on", 0},
	} {
		plan := &faults.NodePlan{Seed: seed, Schedules: []faults.NodeSchedule{{
			Kind: faults.RPCTimeout, Node: victim, At: windowStart, Rounds: windowRounds,
		}}}
		p := pol
		p.BreakerFailures = mode.breakers
		h, err := cluster.NewHarness(cluster.HarnessConfig{
			Nodes:   nNodes,
			Devices: specs,
			Node:    nodeCfg,
			Policy:  p,
			Faults:  plan,
			RPC:     &cluster.RPCPolicy{},
		})
		if err != nil {
			panic(err)
		}
		c := h.Coordinator()

		m := PartitionMode{Name: mode.name}
		for step := 0; step < n; step++ {
			if step%tickEvery == 0 && int64(step/tickEvery) < totalRounds {
				if err := c.Tick(); err != nil {
					panic(err)
				}
			}
			batch := make([]fleet.Request, nDevices)
			for i := range specs {
				batch[i] = streams[i][step]
			}
			results, err := c.Submit(batch)
			if err != nil {
				panic(err)
			}
			for _, r := range results {
				if r.Err != nil {
					m.Failed++
				} else {
					m.Served++
				}
			}
		}

		stats := h.Loopback().Stats(victim)
		m.Attempts, m.Retries, m.Timeouts = stats.Attempts, stats.Retries, stats.Timeouts
		m.RPCCost, m.MaxSubmit = stats.Cost, stats.MaxSubmit
		m.HLAccuracy = c.Metrics().HLAccuracy
		for _, tr := range c.BreakerLog() {
			if tr.To == cluster.BreakerOpen {
				m.BreakerOpens++
			}
		}
		res.Modes = append(res.Modes, m)
		h.Close()
	}
	return res
}

// nodeID mirrors the harness's member naming.
func nodeID(i int) string {
	return fmt.Sprintf("node-%d", i)
}
