package experiments

import (
	"io"

	"ssdcheck/internal/core"
	"ssdcheck/internal/ssd"
	"ssdcheck/internal/trace"
)

// Fig11Result reproduces the headline accuracy evaluation of Fig. 11:
// NL and HL prediction accuracy for every workload on every preset.
type Fig11Result struct {
	Workloads []string
	Devices   []Fig11Device
}

// Fig11Device is one SSD's accuracy row.
type Fig11Device struct {
	Name string
	// NL and HL accuracies per workload, aligned with
	// Fig11Result.Workloads, plus the averages the paper quotes.
	NL, HL         []float64
	MeanNL, MeanHL float64
	Enabled        bool
	DiagnosisErr   error
}

// Name implements Report.
func (Fig11Result) Name() string { return "Fig. 11" }

// Render implements Report.
func (r Fig11Result) Render(w io.Writer) {
	fprintf(w, "Fig. 11 — prediction accuracy (NL%% / HL%%)\n")
	fprintf(w, "%-8s", "SSD")
	for _, wl := range r.Workloads {
		fprintf(w, " %13s", wl)
	}
	fprintf(w, " %13s\n", "average")
	for _, d := range r.Devices {
		fprintf(w, "%-8s", d.Name)
		if d.DiagnosisErr != nil {
			fprintf(w, " diagnosis failed: %v\n", d.DiagnosisErr)
			continue
		}
		for i := range d.NL {
			fprintf(w, "  %5.1f /%5.1f", 100*d.NL[i], 100*d.HL[i])
		}
		fprintf(w, "  %5.1f /%5.1f\n", 100*d.MeanNL, 100*d.MeanHL)
	}
}

// Fig11 runs the paper's accuracy methodology: per device, run the
// diagnosis once, build the predictor, then replay each of the seven
// workloads, scoring predictions against measured latency classes. Each
// workload starts from a freshly preconditioned, freshly diagnosed
// device so workloads do not contaminate each other, exactly like the
// paper's per-trace fio runs.
func Fig11(o Opts) Fig11Result {
	o = o.WithDefaults()
	res := Fig11Result{}
	for _, spec := range trace.Workloads {
		res.Workloads = append(res.Workloads, spec.Name)
	}
	n := o.n(40000)

	// Every (device, workload) cell is independent: its seed depends
	// only on the cell indices and it diagnoses a fresh device. Fan the
	// whole grid out at once and assemble rows in order afterwards.
	type cell struct {
		nl, hl  float64
		enabled bool
		err     error
	}
	nw := len(trace.Workloads)
	cells := runPar(o, len(ssd.PresetNames)*nw, func(k int) cell {
		i, j := k/nw, k%nw
		seed := o.Seed + uint64(i)*131 + uint64(j)*17
		cfg, _ := ssd.Preset(ssd.PresetNames[i], seed)
		dev, feats, now, err := diagnosedDevice(cfg, seed)
		if err != nil {
			return cell{err: err}
		}
		pr := core.NewPredictor(feats, core.Params{})
		reqs := trace.Generate(trace.Workloads[j], dev.CapacitySectors(), seed+999, n)
		rep := core.Evaluate(dev, pr, reqs, now)
		return cell{nl: rep.NLAccuracy(), hl: rep.HLAccuracy(), enabled: pr.Enabled()}
	})

	for i, name := range ssd.PresetNames {
		row := Fig11Device{Name: "SSD " + name, Enabled: true}
		for j := range trace.Workloads {
			c := cells[i*nw+j]
			if c.err != nil {
				row.DiagnosisErr = c.err
				break
			}
			row.NL = append(row.NL, c.nl)
			row.HL = append(row.HL, c.hl)
			row.Enabled = row.Enabled && c.enabled
		}
		if row.DiagnosisErr == nil {
			for k := range row.NL {
				row.MeanNL += row.NL[k]
				row.MeanHL += row.HL[k]
			}
			row.MeanNL /= float64(len(row.NL))
			row.MeanHL /= float64(len(row.HL))
		}
		res.Devices = append(res.Devices, row)
	}
	return res
}
