package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// small runs everything at reduced scale so the whole suite stays fast.
func small() Opts { return Opts{Seed: 42, Scale: 0.35} }

func renderNonEmpty(t *testing.T, r Report) string {
	t.Helper()
	var buf bytes.Buffer
	r.Render(&buf)
	if buf.Len() == 0 {
		t.Fatalf("%s rendered nothing", r.Name())
	}
	return buf.String()
}

func TestFig01Shape(t *testing.T) {
	r := Fig01(small())
	if len(r.Devices) != 3 {
		t.Fatalf("devices=%d", len(r.Devices))
	}
	for _, d := range r.Devices {
		// The whole point of Fig. 1: tails far beyond the median.
		if d.P999Us < 5*d.MedianUs {
			t.Errorf("%s: p99.9 %.1fus not a long tail of median %.1fus", d.Name, d.P999Us, d.MedianUs)
		}
		if d.ThroughputCoV <= 0 {
			t.Errorf("%s: no throughput fluctuation", d.Name)
		}
		if len(d.CDF) == 0 {
			t.Errorf("%s: empty CDF", d.Name)
		}
	}
	renderNonEmpty(t, r)
}

func TestFig03Shape(t *testing.T) {
	r := Fig03(small())
	if len(r.Variants) != 5 {
		t.Fatalf("variants=%d", len(r.Variants))
	}
	byName := map[string]Fig03Variant{}
	for _, v := range r.Variants {
		byName[v.Name] = v
	}
	// Tail ordering: Optimal < WB+Others <= All; GC variants dominate.
	if byName["SSD_WB+Others"].P995Us < 3*byName["SSD_Optimal"].P995Us {
		t.Errorf("WB tail %.1f should be several x optimal %.1f",
			byName["SSD_WB+Others"].P995Us, byName["SSD_Optimal"].P995Us)
	}
	if byName["SSD_All"].P995Us < byName["SSD_WB+Others"].P995Us {
		t.Errorf("All tail should be >= WB tail")
	}
	// Fig. 3c: others dominate the op mix, WB > GC.
	if r.PortionOthers < 0.85 || r.PortionWB < r.PortionGC {
		t.Errorf("op mix off: others=%.3f wb=%.3f gc=%.3f", r.PortionOthers, r.PortionWB, r.PortionGC)
	}
	// Fig. 3d: WB+GC carry most of the HL overhead.
	if r.OverheadWBShareHL+r.OverheadGCShareHL < 0.6 {
		t.Errorf("HL overhead share %.2f too small", r.OverheadWBShareHL+r.OverheadGCShareHL)
	}
	renderNonEmpty(t, r)
}

func TestFig04Shape(t *testing.T) {
	r := Fig04(small())
	if len(r.Devices) != 2 {
		t.Fatalf("devices=%d", len(r.Devices))
	}
	if len(r.Devices[0].DetectedBits) != 0 {
		t.Errorf("SSD A detected bits %v, want none", r.Devices[0].DetectedBits)
	}
	if len(r.Devices[1].DetectedBits) != 1 || r.Devices[1].DetectedBits[0] != 17 {
		t.Errorf("SSD D detected bits %v, want [17]", r.Devices[1].DetectedBits)
	}
	renderNonEmpty(t, r)
}

func TestFig05Shape(t *testing.T) {
	r := Fig05(small())
	wants := map[string][]int{"SSD A": nil, "SSD D": {17}, "SSD E": {17, 18}}
	for _, d := range r.Devices {
		want := wants[d.Name]
		if len(d.DetectedBits) != len(want) {
			t.Errorf("%s: bits %v want %v", d.Name, d.DetectedBits, want)
			continue
		}
		for i := range want {
			if d.DetectedBits[i] != want[i] {
				t.Errorf("%s: bits %v want %v", d.Name, d.DetectedBits, want)
			}
		}
		if d.GCOverheadMs < 5 {
			t.Errorf("%s: GC overhead %.1fms implausible", d.Name, d.GCOverheadMs)
		}
	}
	renderNonEmpty(t, r)
}

func TestFig06Shape(t *testing.T) {
	r := Fig06(small())
	if r.BufferKB != 248 {
		t.Fatalf("buffer %dKB, want 248KB", r.BufferKB)
	}
	if r.PeriodWrites != 62 {
		t.Fatalf("period %d writes, want 62", r.PeriodWrites)
	}
	renderNonEmpty(t, r)
}

func TestTable1Shape(t *testing.T) {
	r := Table1(small())
	if len(r.Rows) != 7 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Err != nil {
			t.Errorf("%s: %v", row.Device, row.Err)
			continue
		}
		if !row.Match {
			t.Errorf("%s: extraction does not match ground truth: %+v", row.Device, row.Features)
		}
	}
	renderNonEmpty(t, r)
}

func TestTable2Shape(t *testing.T) {
	r := Table2(small())
	if len(r.Rows) != 7 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if d := row.WriteFrac - row.TargetWrite; d > 0.03 || d < -0.03 {
			t.Errorf("%s write frac %.3f vs target %.3f", row.Name, row.WriteFrac, row.TargetWrite)
		}
	}
	renderNonEmpty(t, r)
}

func TestTable3Shape(t *testing.T) {
	r := Table3(small())
	// The paper's Table III: ~99% of requests under 250us.
	if r.ReadBuckets[0] < 0.9 || r.WriteBuckets[0] < 0.9 {
		t.Errorf("NL bucket too small: reads %.3f writes %.3f", r.ReadBuckets[0], r.WriteBuckets[0])
	}
	for _, b := range [][4]float64{r.ReadBuckets, r.WriteBuckets} {
		sum := b[0] + b[1] + b[2] + b[3]
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("buckets do not sum to 1: %v", b)
		}
	}
	renderNonEmpty(t, r)
}

func TestFig11Shape(t *testing.T) {
	r := Fig11(Opts{Seed: 42, Scale: 0.2})
	if len(r.Devices) != 7 || len(r.Workloads) != 7 {
		t.Fatalf("grid %dx%d", len(r.Devices), len(r.Workloads))
	}
	for _, d := range r.Devices {
		if d.DiagnosisErr != nil {
			t.Errorf("%s: %v", d.Name, d.DiagnosisErr)
			continue
		}
		if d.MeanNL < 0.95 {
			t.Errorf("%s: mean NL accuracy %.3f below 0.95", d.Name, d.MeanNL)
		}
		// SSD E carries the heaviest unmodeled secondary features by
		// design (lowest HL accuracy in the paper's Fig. 11 as well).
		floor := 0.30
		if d.Name == "SSD E" {
			floor = 0.18
		}
		if d.MeanHL < floor {
			t.Errorf("%s: mean HL accuracy %.3f below %.2f", d.Name, d.MeanHL, floor)
		}
	}
	renderNonEmpty(t, r)
}

func TestFig12Shape(t *testing.T) {
	r := Fig12(Opts{Seed: 42, Scale: 0.3})
	if len(r.Combos) != 9 {
		t.Fatalf("combos=%d", len(r.Combos))
	}
	if r.MeanGain <= 1.2 {
		t.Errorf("VA-LVM mean gain %.2fx should clearly beat Linear", r.MeanGain)
	}
	if r.MeanTailPct >= 100 {
		t.Errorf("VA-LVM mean tail %.1f%% should be below Linear", r.MeanTailPct)
	}
	renderNonEmpty(t, r)
}

func TestFig13Shape(t *testing.T) {
	r := Fig13(Opts{Seed: 42, Scale: 0.4})
	if len(r.Schedulers) != 4 {
		t.Fatalf("schedulers=%d", len(r.Schedulers))
	}
	byName := map[string]Fig13Sched{}
	for _, s := range r.Schedulers {
		byName[s.Name] = s
	}
	// At the flush-dominated measurement point (the paper's metric),
	// PAS must beat noop clearly.
	if byName["pas"].TailUs >= byName["noop"].TailUs {
		t.Errorf("PAS tail %.1f should beat noop %.1f at the flush point", byName["pas"].TailUs, byName["noop"].TailUs)
	}
	if byName["pas"].MedianUs > 1.5*byName["noop"].MedianUs {
		t.Errorf("PAS median %.1f should not regress vs noop %.1f", byName["pas"].MedianUs, byName["noop"].MedianUs)
	}
	renderNonEmpty(t, r)
}

func TestFig14Shape(t *testing.T) {
	r := Fig14(Opts{Seed: 42, Scale: 0.25})
	if len(r.Cells) != 6 {
		t.Fatalf("cells=%d", len(r.Cells))
	}
	betterTail, thptOK := 0, 0
	for _, c := range r.Cells {
		for _, row := range c.Rows {
			if row.Scheduler != "pas" {
				continue
			}
			if row.TailVsNoop < 1 {
				betterTail++
			}
			if row.ThptVsNoop > 0.9 {
				thptOK++
			}
		}
	}
	if betterTail < 4 {
		t.Errorf("PAS beat noop's read tail in only %d of 6 cells", betterTail)
	}
	if thptOK < 5 {
		t.Errorf("PAS throughput held up in only %d of 6 cells", thptOK)
	}
	renderNonEmpty(t, r)
}

func TestFig15Shape(t *testing.T) {
	r := Fig15(Opts{Seed: 42, Scale: 0.5})
	// Steady mean throughput lands at parity in this substrate: all
	// write bytes reach the SSD eventually under either policy, so the
	// paper's 2.1x mean gain is not reproducible here (work
	// conservation; see EXPERIMENTS.md). What must hold is that Hybrid
	// PAS never *loses* meaningfully, and that the robust panels —
	// write tail and NVM pressure — clearly favor it.
	if r.SteadyGain < 0.85 || r.SteadyGain > 1.6 {
		t.Errorf("hybrid steady gain %.2fx outside the parity band", r.SteadyGain)
	}
	if r.WriteTailHybrid >= r.WriteTailBaseline {
		t.Errorf("hybrid write tail %v should beat baseline %v", r.WriteTailHybrid, r.WriteTailBaseline)
	}
	for _, p := range r.Pressure {
		if p.ReductionPct <= 0 {
			t.Errorf("%s: no NVM pressure reduction (%.1f%%)", p.Device, p.ReductionPct)
		}
	}
	renderNonEmpty(t, r)
}

func TestRegistryRunsEverything(t *testing.T) {
	if len(Names()) != 21 {
		t.Fatalf("registry has %d entries", len(Names()))
	}
	var buf bytes.Buffer
	if err := Run("fig6", small(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 6") {
		t.Fatalf("unexpected output: %s", buf.String())
	}
	if err := Run("nope", small(), &buf); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestAblationShape(t *testing.T) {
	r := Ablation(Opts{Seed: 42, Scale: 0.3})
	get := func(dev, variant string) AblationRow {
		for _, row := range r.Rows {
			if row.Device == dev && row.Variant == variant {
				return row
			}
		}
		t.Fatalf("missing row %s/%s", dev, variant)
		return AblationRow{}
	}
	// The paper's prose claims, as numbers: removing the calibrator
	// collapses HL accuracy; removing the volume model hurts the
	// multi-volume D badly.
	if full, no := get("SSD A", "full"), get("SSD A", "no-calibration"); full.HL-no.HL < 0.2 {
		t.Errorf("calibrator worth only %.1fpp HL on A (full %.2f, without %.2f)",
			100*(full.HL-no.HL), full.HL, no.HL)
	}
	if full, no := get("SSD D", "full"), get("SSD D", "no-volume-model"); full.HL-no.HL < 0.1 {
		t.Errorf("volume model worth only %.1fpp HL on D (full %.2f, without %.2f)",
			100*(full.HL-no.HL), full.HL, no.HL)
	}
	if len(r.GCQuantileSweep) != 6 {
		t.Fatalf("sweep points=%d", len(r.GCQuantileSweep))
	}
	renderNonEmpty(t, r)
}

func TestSLCExtensionShape(t *testing.T) {
	r := SLCExtension(Opts{Seed: 42, Scale: 0.5})
	if r.DiagnosisFailed {
		t.Fatal("diagnosis failed on SSD H")
	}
	if r.DetectedPages < r.GroundTruth/2 || r.DetectedPages > r.GroundTruth*2 {
		t.Fatalf("SLC size %d vs ground truth %d", r.DetectedPages, r.GroundTruth)
	}
	// The history-based detector must carry the fold prediction: with
	// it off, fold stalls are unpredictable.
	if r.HLFull < 0.4 {
		t.Fatalf("full-model HL accuracy %.2f too low on SSD H", r.HLFull)
	}
	if r.HLFull-r.HLNoGC < 0.3 {
		t.Fatalf("history detector worth only %.1fpp on SSD H (full %.2f, off %.2f)",
			100*(r.HLFull-r.HLNoGC), r.HLFull, r.HLNoGC)
	}
	renderNonEmpty(t, r)
}

func TestFIOSShape(t *testing.T) {
	r := FIOS(Opts{Seed: 42, Scale: 0.4})
	if len(r.Rows) != 3 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	better := 0
	for _, row := range r.Rows {
		if row.AssistedP50 < row.ClassicP50 {
			better++
		}
		// Lifting the assumption must not cost meaningful throughput.
		if row.AssistedMBps < 0.9*row.ClassicMBps {
			t.Errorf("%s: assisted throughput %.2f collapsed vs classic %.2f",
				row.Workload, row.AssistedMBps, row.ClassicMBps)
		}
	}
	if better < 2 {
		t.Errorf("assisted FIOS improved the read median in only %d of 3 workloads", better)
	}
	renderNonEmpty(t, r)
}

func TestQDSweepShape(t *testing.T) {
	r := QDSweep(Opts{Seed: 42, Scale: 0.3})
	if len(r.Points) != 4 {
		t.Fatalf("points=%d", len(r.Points))
	}
	// The host queue reorders at any device depth: PAS must beat noop
	// at the flush point everywhere, and deeper device concurrency
	// must not make noop's absolute tail worse.
	for _, p := range r.Points {
		if p.TailRatio >= 1.0 {
			t.Errorf("depth %d: PAS ratio %.2f did not beat noop", p.Depth, p.TailRatio)
		}
	}
	if last, first := r.Points[len(r.Points)-1], r.Points[0]; last.NoopTail > first.NoopTail*3/2 {
		t.Errorf("noop tail grew with device concurrency: %v -> %v", first.NoopTail, last.NoopTail)
	}
	renderNonEmpty(t, r)
}

// TestExperimentsDeterministic pins the repository's headline promise:
// a run is a pure function of its seed, end to end.
func TestExperimentsDeterministic(t *testing.T) {
	for _, name := range []string{"fig6", "table3", "fig4"} {
		var a, b bytes.Buffer
		if err := Run(name, Opts{Seed: 7, Scale: 0.3}, &a); err != nil {
			t.Fatal(err)
		}
		if err := Run(name, Opts{Seed: 7, Scale: 0.3}, &b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s not deterministic:\n%s\nvs\n%s", name, a.String(), b.String())
		}
		var c bytes.Buffer
		if err := Run(name, Opts{Seed: 8, Scale: 0.3}, &c); err != nil {
			t.Fatal(err)
		}
		if name != "fig6" && a.String() == c.String() {
			t.Errorf("%s ignored the seed entirely", name)
		}
	}
}

func TestClusterFailoverShape(t *testing.T) {
	r := ClusterFailover(small())
	if r.Nodes != 3 || r.Devices != 6 || len(r.Rows) != 6 {
		t.Fatalf("shape: %+v", r)
	}
	if r.Victim == "" || r.FailoverRound == 0 {
		t.Fatalf("no failover recorded: %+v", r)
	}
	if r.DevicesMoved == 0 {
		t.Fatal("killing a node moved no devices")
	}
	for _, row := range r.Rows {
		if row.OwnerAfter == r.Victim {
			t.Fatalf("device %s left on killed node", row.Device)
		}
		if row.Moved != (row.OwnerBefore != row.OwnerAfter) {
			t.Fatalf("inconsistent move flag: %+v", row)
		}
	}
	// The headline claim: the interrupted, rebalanced cluster run is
	// statistically indistinguishable from one uninterrupted fleet.
	if !r.Equivalent {
		t.Fatal("cluster run diverged from single-fleet baseline")
	}
	out := renderNonEmpty(t, r)
	if !strings.Contains(out, "byte-identical") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestECVolShape(t *testing.T) {
	r := ECVol(small())
	if r.Devices != 6 || r.Data != 3 || r.Parity != 2 || len(r.Variants) != 2 {
		t.Fatalf("shape: %+v", r)
	}
	pred, obl := r.Variants[0], r.Variants[1]
	if pred.Name != "predictive" || obl.Name != "oblivious" {
		t.Fatalf("variant order: %q, %q", pred.Name, obl.Name)
	}
	// Identical workloads: both volumes must have served the same ops.
	if pred.Reads != obl.Reads || pred.Reads+pred.Writes != int64(r.Ops) {
		t.Fatalf("op accounting: pred %d+%d, obl %d+%d, want %d total",
			pred.Reads, pred.Writes, obl.Reads, obl.Writes, r.Ops)
	}
	// The steering signal must actually fire, and only predictively.
	if pred.SteeredReads == 0 {
		t.Fatal("predictive volume never steered a read")
	}
	if obl.SteeredReads != 0 {
		t.Fatalf("oblivious volume steered %d reads", obl.SteeredReads)
	}
	// The fail-stopped member forces reconstruction in both variants.
	if pred.ReconstructReads == 0 || obl.ReconstructReads == 0 {
		t.Fatalf("fail-stop never forced reconstruction: pred %d, obl %d",
			pred.ReconstructReads, obl.ReconstructReads)
	}
	// Deferred parity stays inside the default budget.
	if pred.MaxPendingParity > 8 {
		t.Fatalf("pending parity %d exceeded the deferral budget", pred.MaxPendingParity)
	}
	if pred.DeferredFlushes == 0 {
		t.Fatal("predictive volume never deferred a parity flush")
	}
	if !r.IntegrityOK {
		t.Fatal("a read returned a wrong value")
	}
	if !r.PredictiveWins {
		t.Fatalf("predictive p99.9 %v did not beat oblivious %v", pred.ReadP999, obl.ReadP999)
	}
	out := renderNonEmpty(t, r)
	if !strings.Contains(out, "predictive wins p99.9") || !strings.Contains(out, "all reads verified") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestQuorumShape(t *testing.T) {
	r := Quorum(small())
	if r.Replicas != 3 || r.Nodes != 3 || r.Devices != 4 || len(r.Legs) != 2 {
		t.Fatalf("shape: %+v", r)
	}
	for _, leg := range r.Legs {
		if leg.Deferred == 0 {
			t.Fatalf("shards=%d: chaos produced no unavailable window", leg.Shards)
		}
		// The availability claim: no outage outruns lease + election.
		if leg.MaxOutageRounds == 0 || leg.MaxOutageRounds > leg.OutageBound {
			t.Fatalf("shards=%d: outage %d rounds, bound %d", leg.Shards, leg.MaxOutageRounds, leg.OutageBound)
		}
		// Bootstrap + one election per chaos window.
		if leg.Elections < 4 {
			t.Fatalf("shards=%d: elections %d, want >= 4", leg.Shards, leg.Elections)
		}
		// The split-brain claim: the fenced duel was real and harmless.
		if leg.FencingRejections == 0 {
			t.Fatalf("shards=%d: dueling leader never fenced", leg.Shards)
		}
		if leg.DualApplies != 0 {
			t.Fatalf("shards=%d: %d dual-applies", leg.Shards, leg.DualApplies)
		}
		if !leg.LogsIdentical {
			t.Fatalf("shards=%d: replica logs diverge", leg.Shards)
		}
		if !leg.ExactlyOnce {
			t.Fatalf("shards=%d: placement not exactly-once", leg.Shards)
		}
		// The headline claim: the interrupted, failover-ridden run is
		// byte-identical to one uninterrupted fleet, accuracy included.
		if !leg.Equivalent {
			t.Fatalf("shards=%d: diverged from single-fleet baseline", leg.Shards)
		}
		if leg.HLAccuracy != leg.BaselineHL {
			t.Fatalf("shards=%d: accuracy changed (%v vs %v)", leg.Shards, leg.HLAccuracy, leg.BaselineHL)
		}
	}
	if !r.LogsMatchAcrossLegs {
		t.Fatal("committed logs differ across shard counts")
	}
	out := renderNonEmpty(t, r)
	if !strings.Contains(out, "byte-identical") {
		t.Fatalf("render:\n%s", out)
	}
}
