package experiments

import (
	"io"
	"sort"
	"time"

	"ssdcheck/internal/blockdev"
	"ssdcheck/internal/core"
	"ssdcheck/internal/nvm"
	"ssdcheck/internal/ssd"
	"ssdcheck/internal/stats"
	"ssdcheck/internal/trace"
)

// Fig15Result reproduces the Hybrid PAS evaluation of Fig. 15:
// (a) throughput timeline of baseline vs Hybrid PAS on SSD C under the
// synthetic write-intensive benchmark, (b) the Web latency tail on SSD
// C, (c) NVM write pressure on SSDs A-C under write-intensive traces.
type Fig15Result struct {
	// (a)
	TimelineBaseline, TimelineHybrid []float64 // MB/s per window
	SteadyBaseline, SteadyHybrid     float64
	SteadyGain                       float64
	// Consistency of the steady phase (stddev/mean of the windowed
	// series): the paper's "persistent performance" claim.
	SteadyCoVBaseline, SteadyCoVHybrid float64
	// CliffBaseline is the early/steady throughput ratio — the Fig. 15a
	// exhaustion cliff.
	CliffBaseline, CliffHybrid float64
	// (b)
	WriteTailBaseline, WriteTailHybrid time.Duration // P99.9 foreground write latency
	// (c)
	Pressure []Fig15Pressure
}

// Fig15Pressure is one device's NVM-pressure comparison.
type Fig15Pressure struct {
	Device               string
	BaselineMB, HybridMB float64
	ReductionPct         float64
}

// Name implements Report.
func (Fig15Result) Name() string { return "Fig. 15" }

// Render implements Report.
func (r Fig15Result) Render(w io.Writer) {
	fprintf(w, "Fig. 15 — Hybrid PAS vs baseline (buffer weight 80)\n")
	fprintf(w, "(a) steady throughput: baseline %.2f MB/s (CoV %.2f, early/steady %.2fx), hybrid %.2f MB/s (CoV %.2f, early/steady %.2fx)\n",
		r.SteadyBaseline, r.SteadyCoVBaseline, r.CliffBaseline,
		r.SteadyHybrid, r.SteadyCoVHybrid, r.CliffHybrid)
	fprintf(w, "(b) write tail p99.9 (write-intensive synthetic): baseline %v, hybrid %v\n",
		r.WriteTailBaseline.Round(10*time.Microsecond), r.WriteTailHybrid.Round(10*time.Microsecond))
	fprintf(w, "(c) NVM pressure:\n")
	for _, p := range r.Pressure {
		fprintf(w, "  %-8s baseline %8.1f MB  hybrid %8.1f MB  (-%.1f%%)\n",
			p.Device, p.BaselineMB, p.HybridMB, p.ReductionPct)
	}
}

// fig15Predictor builds the Hybrid PAS predictor from a fresh diagnosis
// of the device configuration.
func fig15Predictor(cfg ssd.Config, seed uint64) *core.Predictor {
	_, feats, _, err := diagnosedDevice(cfg, seed)
	if err != nil {
		panic(err)
	}
	return core.NewPredictor(feats, core.Params{})
}

// Fig15 runs all three panels.
func Fig15(o Opts) Fig15Result {
	o = o.WithDefaults()
	var res Fig15Result

	// (a) throughput timeline on SSD C, synthetic write-intensive. The
	// NVM is sized to a fraction of the run's write volume so the
	// baseline's exhaustion cliff lands inside the measured window at
	// any scale (the paper's device-sized NVM plays the same role over
	// its much longer wall-clock run).
	nTimeline := o.n(60000)
	runTimeline := func(policy nvm.Policy) nvm.Result {
		cfg := ssd.PresetC(o.Seed)
		dev, now := preparedDevice(cfg, o.Seed)
		reqs := trace.Generate(trace.WriteBurst, dev.CapacitySectors(), o.Seed+11, nTimeline)
		var writeBytes int64
		for _, r := range reqs {
			if r.Op == blockdev.Write {
				writeBytes += int64(r.Bytes())
			}
		}
		nvmBytes := writeBytes / 32
		if nvmBytes < 2<<20 {
			nvmBytes = 2 << 20
		}
		var pr *core.Predictor
		if policy == nvm.HybridPAS {
			pr = fig15Predictor(cfg, o.Seed+1)
		}
		hcfg, now := nvm.CalibratedConfig(dev, trace.WriteBurst, o.Seed+10, now,
			nvm.Config{Policy: policy, NVMBytes: nvmBytes, Seed: o.Seed + 2})
		return nvm.Run(dev, pr, reqs, hcfg, now)
	}
	// (b) write tail on SSD C once the baseline NVM chokes. The paper
	// plots Web on its real SSD C; the simulated C stalls paced Web
	// writes too rarely to measure, so the write-intensive synthetic
	// exercises the same steerable-stall phenomenon (EXPERIMENTS.md).
	runTail := func(policy nvm.Policy) nvm.Result {
		cfg := ssd.PresetC(o.Seed + 3)
		dev, now := preparedDevice(cfg, o.Seed+3)
		hcfg, now := nvm.CalibratedConfig(dev, trace.WriteBurst, o.Seed+12, now,
			nvm.Config{Policy: policy, NVMBytes: 10 << 20, Utilization: 0.85, Seed: o.Seed + 5})
		reqs := trace.Generate(trace.WriteBurst, dev.CapacitySectors(), o.Seed+13, o.n(50000))
		var pr *core.Predictor
		if policy == nvm.HybridPAS {
			pr = fig15Predictor(cfg, o.Seed+4)
		}
		return nvm.Run(dev, pr, reqs, hcfg, now)
	}

	// (c) NVM pressure on SSDs A-C, averaged over the three
	// write-intensive traces (the paper reports per-device averages
	// "for real-world write-intensive workloads"). The drain gets
	// headroom above the write demand so that admission policy — not
	// drain bandwidth — determines the NVM traffic, matching the
	// paper's accounting of pressure as the traffic the policy sends.
	pressDevs := []string{"A", "B", "C"}
	runPressure := func(devName string, seed uint64, policy nvm.Policy, spec trace.Spec) nvm.Result {
		cfg, _ := ssd.Preset(devName, seed)
		dev, now := preparedDevice(cfg, seed)
		reqs := trace.Generate(spec, dev.CapacitySectors(), seed+1, o.n(20000))
		var writeBytes int64
		for _, r := range reqs {
			if r.Op == blockdev.Write {
				writeBytes += int64(r.Bytes())
			}
		}
		nvmBytes := writeBytes / 40
		if nvmBytes < 2<<20 {
			nvmBytes = 2 << 20
		}
		var pr *core.Predictor
		if policy == nvm.HybridPAS {
			pr = fig15Predictor(cfg, seed+2)
		}
		hcfg, now := nvm.CalibratedConfig(dev, spec, seed+4, now,
			nvm.Config{Policy: policy, NVMBytes: nvmBytes, DrainFactor: 1.3, Seed: seed + 3})
		return nvm.Run(dev, pr, reqs, hcfg, now)
	}

	// Every run across the three panels is an independent simulation with
	// its own seed and device, so the whole figure fans out as one batch:
	// 2 timeline runs, 2 tail runs, and 3 devices x 3 traces x 2 policies
	// pressure runs. Each unit writes only its own slot.
	var base, hyb, tailBase, tailHyb nvm.Result
	nSpecs := len(trace.WriteIntensive)
	pressMB := make([]float64, len(pressDevs)*nSpecs*2)
	units := []func(){
		func() { base = runTimeline(nvm.Baseline) },
		func() { hyb = runTimeline(nvm.HybridPAS) },
		func() { tailBase = runTail(nvm.Baseline) },
		func() { tailHyb = runTail(nvm.HybridPAS) },
	}
	for k := range pressMB {
		k := k
		units = append(units, func() {
			di, si, pi := k/(nSpecs*2), (k%(nSpecs*2))/2, k%2
			seed := o.Seed + 20 + uint64(di)
			policy := nvm.Baseline
			if pi == 1 {
				policy = nvm.HybridPAS
			}
			r := runPressure(pressDevs[di], seed, policy, trace.WriteIntensive[si])
			pressMB[k] = float64(r.NVMBytesWritten) / 1e6
		})
	}
	runParUnits(o, units)

	res.TimelineBaseline = base.Timeline.Series()
	res.TimelineHybrid = hyb.Timeline.Series()
	res.SteadyBaseline = steadyMean(res.TimelineBaseline)
	res.SteadyHybrid = steadyMean(res.TimelineHybrid)
	if res.SteadyBaseline > 0 {
		res.SteadyGain = res.SteadyHybrid / res.SteadyBaseline
	}
	res.SteadyCoVBaseline = steadyCoV(res.TimelineBaseline)
	res.SteadyCoVHybrid = steadyCoV(res.TimelineHybrid)
	if res.SteadyBaseline > 0 {
		res.CliffBaseline = earlyMean(res.TimelineBaseline) / res.SteadyBaseline
	}
	if res.SteadyHybrid > 0 {
		res.CliffHybrid = earlyMean(res.TimelineHybrid) / res.SteadyHybrid
	}

	res.WriteTailBaseline = writeTail(tailBase, 0.999)
	res.WriteTailHybrid = writeTail(tailHyb, 0.999)

	for di, devName := range pressDevs {
		p := Fig15Pressure{Device: "SSD " + devName}
		for si := 0; si < nSpecs; si++ {
			p.BaselineMB += pressMB[di*nSpecs*2+si*2]
			p.HybridMB += pressMB[di*nSpecs*2+si*2+1]
		}
		if p.BaselineMB > 0 {
			p.ReductionPct = 100 * (1 - p.HybridMB/p.BaselineMB)
		}
		res.Pressure = append(res.Pressure, p)
	}
	return res
}

func earlyMean(series []float64) float64 {
	if len(series) < 4 {
		return 0
	}
	quarter := series[:len(series)/4]
	var sum float64
	for _, v := range quarter {
		sum += v
	}
	return sum / float64(len(quarter))
}

func steadyCoV(series []float64) float64 {
	if len(series) < 4 {
		return 0
	}
	half := series[len(series)/2:]
	var s stats.Sample
	for _, v := range half {
		s.Add(v)
	}
	if s.Mean() == 0 {
		return 0
	}
	return s.StdDev() / s.Mean()
}

func steadyMean(series []float64) float64 {
	if len(series) == 0 {
		return 0
	}
	half := series[len(series)/2:]
	var sum float64
	for _, v := range half {
		sum += v
	}
	return sum / float64(len(half))
}

func writeTail(r nvm.Result, q float64) time.Duration {
	var lats []float64
	for _, c := range r.Completions {
		if c.Req.Op == blockdev.Write {
			lats = append(lats, float64(c.Latency()))
		}
	}
	if len(lats) == 0 {
		return 0
	}
	sort.Float64s(lats)
	idx := int(q * float64(len(lats)-1))
	return time.Duration(lats[idx])
}
