package experiments

import (
	"io"

	"ssdcheck/internal/core"
	"ssdcheck/internal/extract"
	"ssdcheck/internal/ssd"
	"ssdcheck/internal/trace"
)

// SLCExtensionResult covers the paper's first future-work item (§VI):
// SLC caching. Preset H (not in the paper's Table I) folds an SLC cache
// region into MLC with a page-exact period; the diagnosis detects the
// region size, and — the point of the experiment — SSDcheck's
// history-based GC model absorbs the fold periodicity without any code
// change, because folds are exactly the kind of flush-counted periodic
// stall the interval distribution captures.
type SLCExtensionResult struct {
	TableRow        string
	DetectedPages   int
	GroundTruth     int
	FoldOverheadMs  float64
	NLFull, HLFull  float64 // accuracy with the full model
	NLNoGC, HLNoGC  float64 // accuracy with the history detector off
	DiagnosisFailed bool
}

// Name implements Report.
func (SLCExtensionResult) Name() string { return "SLC extension" }

// Render implements Report.
func (r SLCExtensionResult) Render(w io.Writer) {
	fprintf(w, "SLC-cache extension (paper §VI future work) — SSD H\n")
	if r.DiagnosisFailed {
		fprintf(w, "diagnosis failed\n")
		return
	}
	fprintf(w, "extracted: %s + SLC cache %d pages (ground truth %d), fold stall ~%.1f ms\n",
		r.TableRow, r.DetectedPages, r.GroundTruth, r.FoldOverheadMs)
	fprintf(w, "prediction on WriteBurst:  full model NL %.1f%% / HL %.1f%%\n", 100*r.NLFull, 100*r.HLFull)
	fprintf(w, "        history detector off: NL %.1f%% / HL %.1f%%\n", 100*r.NLNoGC, 100*r.HLNoGC)
	fprintf(w, "(the GC model's interval history predicts the fold cadence unchanged)\n")
}

// SLCExtension runs the extension experiment.
func SLCExtension(o Opts) SLCExtensionResult {
	o = o.WithDefaults()
	var res SLCExtensionResult
	res.GroundTruth = 8 * 64 // SLCBlocks x usable pages per block

	// The diagnosis runs as a single pooled unit so that, when several
	// experiments share a worker pool, this heavy preamble is bounded
	// like any other unit.
	cfg := ssd.PresetH(o.Seed)
	var feats *extract.Features
	var err error
	runParUnits(o, []func(){func() {
		_, feats, _, err = diagnosedDevice(cfg, o.Seed)
	}})
	if err != nil {
		res.DiagnosisFailed = true
		return res
	}
	res.TableRow = feats.TableRow("SSD H")
	res.DetectedPages = feats.SLCCachePages
	res.FoldOverheadMs = float64(feats.SLCFoldOverhead) / 1e6

	run := func(p core.Params) core.AccuracyReport {
		dev, now := preparedDevice(cfg, o.Seed+5)
		pr := core.NewPredictor(feats, p)
		reqs := trace.Generate(trace.WriteBurst, dev.CapacitySectors(), o.Seed+7, o.n(40000))
		return core.Evaluate(dev, pr, reqs, now)
	}
	// Both runs read feats without mutating it, so they proceed in
	// parallel against their own fresh devices.
	var full, noGC core.AccuracyReport
	runParUnits(o, []func(){
		func() { full = run(core.Params{}) },
		func() { noGC = run(core.Params{NoGCModel: true}) },
	})
	res.NLFull, res.HLFull = full.NLAccuracy(), full.HLAccuracy()
	res.NLNoGC, res.HLNoGC = noGC.NLAccuracy(), noGC.HLAccuracy()
	return res
}
