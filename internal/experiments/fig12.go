package experiments

import (
	"io"
	"time"

	"ssdcheck/internal/lvm"
	"ssdcheck/internal/ssd"
	"ssdcheck/internal/trace"
)

// Fig12Result reproduces the VA-LVM evaluation of Fig. 12: all nine
// read-intensive x write-intensive tenant combinations on SSD D, with
// throughput and 99.5th-percentile latency of the read-intensive tenant
// normalized to Linear-LVM.
type Fig12Result struct {
	Combos []Fig12Combo
	// Aggregates the paper quotes: mean/max throughput gain, mean/min
	// normalized tail.
	MeanGain, MaxGain       float64
	MeanTailPct, MinTailPct float64
}

// Fig12Combo is one workload pairing.
type Fig12Combo struct {
	ReadWorkload, WriteWorkload  string
	LinearReadMBps, VAReadMBps   float64
	LinearTail, VATail           time.Duration // 99.5th pct of the read tenant
	WriteLinearMBps, WriteVAMBps float64
}

// ThroughputGain returns VA/Linear read-tenant throughput.
func (c Fig12Combo) ThroughputGain() float64 {
	if c.LinearReadMBps == 0 {
		return 0
	}
	return c.VAReadMBps / c.LinearReadMBps
}

// TailPct returns VA tail as a percentage of Linear tail (the paper's
// "down to 6.53%" metric).
func (c Fig12Combo) TailPct() float64 {
	if c.LinearTail == 0 {
		return 0
	}
	return 100 * float64(c.VATail) / float64(c.LinearTail)
}

// Name implements Report.
func (Fig12Result) Name() string { return "Fig. 12" }

// Render implements Report.
func (r Fig12Result) Render(w io.Writer) {
	fprintf(w, "Fig. 12 — VA-LVM vs Linear-LVM on SSD D (read tenant metrics)\n")
	fprintf(w, "%-14s %8s %8s %7s %10s %10s %7s\n",
		"combo", "lin MB/s", "va MB/s", "gain", "lin p99.5", "va p99.5", "tail%")
	for _, c := range r.Combos {
		fprintf(w, "%-14s %8.2f %8.2f %6.2fx %10s %10s %6.1f%%\n",
			c.ReadWorkload+"+"+c.WriteWorkload,
			c.LinearReadMBps, c.VAReadMBps, c.ThroughputGain(),
			c.LinearTail.Round(10*time.Microsecond), c.VATail.Round(10*time.Microsecond), c.TailPct())
	}
	fprintf(w, "gain: mean %.2fx max %.2fx; tail: mean %.1f%% best %.1f%% of Linear\n",
		r.MeanGain, r.MaxGain, r.MeanTailPct, r.MinTailPct)
}

// Fig12 runs all nine tenant combinations under both volume managers.
func Fig12(o Opts) Fig12Result {
	o = o.WithDefaults()
	window := time.Duration(float64(2*time.Second) * o.Scale)
	if window < 300*time.Millisecond {
		window = 300 * time.Millisecond
	}

	run := func(read, write trace.Spec, mapper func(cap int64) lvm.Mapper, seed uint64) (lvm.TenantResult, lvm.TenantResult) {
		dev, now := preparedDevice(ssd.PresetD(seed), seed)
		res := lvm.RunMultiTenant(dev, mapper(dev.CapacitySectors()), []lvm.TenantSpec{
			{Name: "read", Workload: read, Seed: seed + 1},
			{Name: "write", Workload: write, Seed: seed + 2},
		}, now, window)
		return res[0], res[1]
	}

	var res Fig12Result
	res.MinTailPct = 1e18
	nw := len(trace.WriteIntensive)
	combos := runPar(o, len(trace.ReadIntensive)*nw, func(k int) Fig12Combo {
		i, j := k/nw, k%nw
		read, write := trace.ReadIntensive[i], trace.WriteIntensive[j]
		seed := o.Seed + uint64(i)*37 + uint64(j)*113
		linR, linW := run(read, write, func(c int64) lvm.Mapper { return lvm.NewLinear(c, 2) }, seed)
		vaR, vaW := run(read, write, func(c int64) lvm.Mapper { return lvm.NewVolumeAware(c, []int{17}) }, seed)

		return Fig12Combo{
			ReadWorkload:    read.Name,
			WriteWorkload:   write.Name,
			LinearReadMBps:  linR.ThroughputMBps(window),
			VAReadMBps:      vaR.ThroughputMBps(window),
			LinearTail:      linR.TailLatency(0.995),
			VATail:          vaR.TailLatency(0.995),
			WriteLinearMBps: linW.ThroughputMBps(window),
			WriteVAMBps:     vaW.ThroughputMBps(window),
		}
	})
	for _, combo := range combos {
		res.Combos = append(res.Combos, combo)
		res.MeanGain += combo.ThroughputGain()
		if g := combo.ThroughputGain(); g > res.MaxGain {
			res.MaxGain = g
		}
		res.MeanTailPct += combo.TailPct()
		if p := combo.TailPct(); p < res.MinTailPct {
			res.MinTailPct = p
		}
	}
	n := float64(len(res.Combos))
	res.MeanGain /= n
	res.MeanTailPct /= n
	return res
}
