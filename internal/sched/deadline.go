package sched

import (
	"container/list"
	"time"

	"ssdcheck/internal/blockdev"
	"ssdcheck/internal/host"
	"ssdcheck/internal/simclock"
)

// Deadline reimplements the essential policy of the Linux deadline
// elevator: per-direction FIFO queues with expiry times (reads 500 ms,
// writes 5 s), batched dispatch from one direction at a time, and a
// bound on how many read batches may starve writes.
type Deadline struct {
	readExpire, writeExpire time.Duration
	fifoBatch               int
	writesStarvedLimit      int

	reads, writes list.List // of host.Item
	batchDir      blockdev.Op
	batchLeft     int
	starved       int
}

// NewDeadline returns a deadline scheduler with the Linux defaults.
func NewDeadline() *Deadline {
	return &Deadline{
		readExpire:         500 * time.Millisecond,
		writeExpire:        5 * time.Second,
		fifoBatch:          16,
		writesStarvedLimit: 2,
		batchDir:           blockdev.Read,
	}
}

// Name implements host.Scheduler.
func (d *Deadline) Name() string { return "deadline" }

// Add implements host.Scheduler.
func (d *Deadline) Add(it host.Item) {
	if it.Req.Op == blockdev.Read {
		d.reads.PushBack(it)
	} else {
		d.writes.PushBack(it)
	}
}

// Len implements host.Scheduler.
func (d *Deadline) Len() int { return d.reads.Len() + d.writes.Len() }

// OnComplete implements host.Scheduler.
func (d *Deadline) OnComplete(blockdev.Request, simclock.Time, simclock.Time) {}

func pop(l *list.List) host.Item {
	f := l.Front()
	l.Remove(f)
	return f.Value.(host.Item)
}

func expired(l *list.List, now simclock.Time, ttl time.Duration) bool {
	f := l.Front()
	if f == nil {
		return false
	}
	return now.Sub(f.Value.(host.Item).Arrive) > ttl
}

// Next implements host.Scheduler: continue the current batch unless the
// other direction has an expired head; reads win direction switches
// unless writes have starved too long.
func (d *Deadline) Next(now simclock.Time) (host.Item, bool) {
	if d.Len() == 0 {
		return host.Item{}, false
	}

	// Expired FIFO heads preempt batching.
	switch {
	case expired(&d.writes, now, d.writeExpire):
		d.startBatch(blockdev.Write)
	case expired(&d.reads, now, d.readExpire):
		d.startBatch(blockdev.Read)
	}

	// Continue an in-progress batch if its direction still has work.
	if d.batchLeft > 0 {
		if d.batchDir == blockdev.Read && d.reads.Len() > 0 {
			d.batchLeft--
			return pop(&d.reads), true
		}
		if d.batchDir == blockdev.Write && d.writes.Len() > 0 {
			d.batchLeft--
			return pop(&d.writes), true
		}
	}

	// Choose a new batch direction: reads preferred, writes rescued
	// after starving through writesStarvedLimit read batches.
	switch {
	case d.reads.Len() > 0 && (d.writes.Len() == 0 || d.starved < d.writesStarvedLimit):
		if d.writes.Len() > 0 {
			d.starved++
		}
		d.startBatch(blockdev.Read)
		d.batchLeft--
		return pop(&d.reads), true
	case d.writes.Len() > 0:
		d.starved = 0
		d.startBatch(blockdev.Write)
		d.batchLeft--
		return pop(&d.writes), true
	default:
		return host.Item{}, false
	}
}

func (d *Deadline) startBatch(dir blockdev.Op) {
	d.batchDir = dir
	d.batchLeft = d.fifoBatch
}
