package sched

import (
	"container/list"

	"ssdcheck/internal/blockdev"
	"ssdcheck/internal/host"
	"ssdcheck/internal/simclock"
)

// CFQ is a simplified completely-fair-queueing elevator: synchronous
// (read) and asynchronous (write) service trees share the device through
// alternating quanta, with the sync tree receiving the larger share —
// the essential behaviour of Linux CFQ for a read/write mix on a single
// priority class.
type CFQ struct {
	reads, writes list.List // of host.Item
	readQuantum   int
	writeQuantum  int
	sliceDir      blockdev.Op
	sliceLeft     int
}

// NewCFQ returns a simplified CFQ scheduler with a 4:1 read:write
// quantum.
func NewCFQ() *CFQ {
	return &CFQ{readQuantum: 8, writeQuantum: 2, sliceDir: blockdev.Read}
}

// Name implements host.Scheduler.
func (c *CFQ) Name() string { return "cfq" }

// Add implements host.Scheduler.
func (c *CFQ) Add(it host.Item) {
	if it.Req.Op == blockdev.Read {
		c.reads.PushBack(it)
	} else {
		c.writes.PushBack(it)
	}
}

// Len implements host.Scheduler.
func (c *CFQ) Len() int { return c.reads.Len() + c.writes.Len() }

// OnComplete implements host.Scheduler.
func (c *CFQ) OnComplete(blockdev.Request, simclock.Time, simclock.Time) {}

// Next implements host.Scheduler.
func (c *CFQ) Next(simclock.Time) (host.Item, bool) {
	if c.Len() == 0 {
		return host.Item{}, false
	}
	// Exhausted slice, or the slice's direction is empty: rotate.
	if c.sliceLeft <= 0 || c.dirEmpty(c.sliceDir) {
		c.rotate()
	}
	c.sliceLeft--
	if c.sliceDir == blockdev.Read {
		return pop(&c.reads), true
	}
	return pop(&c.writes), true
}

func (c *CFQ) dirEmpty(dir blockdev.Op) bool {
	if dir == blockdev.Read {
		return c.reads.Len() == 0
	}
	return c.writes.Len() == 0
}

// rotate hands the device to the other direction's service tree,
// falling back to whichever tree has work when the other is empty.
func (c *CFQ) rotate() {
	next := blockdev.Read
	if c.sliceDir == blockdev.Read {
		next = blockdev.Write
	}
	if c.dirEmpty(next) {
		if next == blockdev.Read {
			next = blockdev.Write
		} else {
			next = blockdev.Read
		}
	}
	c.sliceDir = next
	if next == blockdev.Read {
		c.sliceLeft = c.readQuantum
	} else {
		c.sliceLeft = c.writeQuantum
	}
}
