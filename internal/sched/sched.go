// Package sched implements the host I/O schedulers the paper compares
// (§IV-B, §V-D): noop, deadline and a simplified CFQ as from-scratch
// stand-ins for the Linux mainline schedulers, plus the paper's
// contribution — the SSD-only Prediction-Aware Scheduler (PAS) — and an
// oracle-fed "ideal PAS" that bounds the cost of misprediction.
package sched

import (
	"container/list"

	"ssdcheck/internal/blockdev"
	"ssdcheck/internal/host"
	"ssdcheck/internal/simclock"
)

// Noop serves requests strictly in arrival order, like the Linux noop
// elevator.
type Noop struct {
	q list.List // of host.Item
}

// NewNoop returns a FIFO scheduler.
func NewNoop() *Noop { return &Noop{} }

// Name implements host.Scheduler.
func (n *Noop) Name() string { return "noop" }

// Add implements host.Scheduler.
func (n *Noop) Add(it host.Item) { n.q.PushBack(it) }

// Next implements host.Scheduler.
func (n *Noop) Next(simclock.Time) (host.Item, bool) {
	front := n.q.Front()
	if front == nil {
		return host.Item{}, false
	}
	n.q.Remove(front)
	return front.Value.(host.Item), true
}

// Len implements host.Scheduler.
func (n *Noop) Len() int { return n.q.Len() }

// OnComplete implements host.Scheduler.
func (n *Noop) OnComplete(blockdev.Request, simclock.Time, simclock.Time) {}
