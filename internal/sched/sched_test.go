package sched

import (
	"testing"
	"time"

	"ssdcheck/internal/blockdev"
	"ssdcheck/internal/core"
	"ssdcheck/internal/extract"
	"ssdcheck/internal/host"
	"ssdcheck/internal/obs"
	"ssdcheck/internal/simclock"
	"ssdcheck/internal/ssd"
	"ssdcheck/internal/trace"
)

func item(seq uint64, op blockdev.Op, at simclock.Time) host.Item {
	return host.Item{Req: blockdev.Request{Op: op, LBA: int64(seq) * 8, Sectors: 8}, Arrive: at, Seq: seq}
}

func TestNoopFIFO(t *testing.T) {
	n := NewNoop()
	if _, ok := n.Next(0); ok {
		t.Fatal("empty queue should report no work")
	}
	n.Add(item(1, blockdev.Write, 0))
	n.Add(item(2, blockdev.Read, 1))
	n.Add(item(3, blockdev.Write, 2))
	for want := uint64(1); want <= 3; want++ {
		it, ok := n.Next(10)
		if !ok || it.Seq != want {
			t.Fatalf("noop order broken: got %v ok=%v want seq %d", it.Seq, ok, want)
		}
	}
	if n.Len() != 0 {
		t.Fatal("queue should drain")
	}
}

func TestDeadlinePrefersReads(t *testing.T) {
	d := NewDeadline()
	d.Add(item(1, blockdev.Write, 0))
	d.Add(item(2, blockdev.Read, 1))
	it, _ := d.Next(10)
	if it.Req.Op != blockdev.Read {
		t.Fatalf("deadline should start with a read batch, got %v", it.Req.Op)
	}
}

func TestDeadlineWriteExpiryPreempts(t *testing.T) {
	d := NewDeadline()
	d.Add(item(1, blockdev.Write, 0))
	for i := uint64(2); i < 40; i++ {
		d.Add(item(i, blockdev.Read, 1))
	}
	// Long after the write expired, it must preempt the read batch.
	it, _ := d.Next(simclock.Time(6 * time.Second))
	if it.Req.Op != blockdev.Write {
		t.Fatalf("expired write should preempt, got %v", it.Req.Op)
	}
}

func TestDeadlineRescuesStarvedWrites(t *testing.T) {
	d := NewDeadline()
	// Interleave enough reads to run several full read batches while
	// one write waits (not yet expired).
	d.Add(item(0, blockdev.Write, 0))
	for i := uint64(1); i <= 64; i++ {
		d.Add(item(i, blockdev.Read, 0))
	}
	writeServed := -1
	for i := 0; d.Len() > 0; i++ {
		it, _ := d.Next(simclock.Time(i) * simclock.Time(time.Millisecond))
		if it.Req.Op == blockdev.Write {
			writeServed = i
			break
		}
	}
	if writeServed < 0 {
		t.Fatal("write never served")
	}
	if writeServed > 2*16+1 {
		t.Fatalf("write starved through %d dispatches, limit is two read batches", writeServed)
	}
}

func TestCFQAlternatesWithReadBias(t *testing.T) {
	c := NewCFQ()
	for i := uint64(0); i < 40; i++ {
		c.Add(item(i, blockdev.Read, 0))
		c.Add(item(100+i, blockdev.Write, 0))
	}
	reads, writes := 0, 0
	for i := 0; i < 20; i++ {
		it, ok := c.Next(0)
		if !ok {
			t.Fatal("queue should not be empty")
		}
		if it.Req.Op == blockdev.Read {
			reads++
		} else {
			writes++
		}
	}
	if reads <= writes {
		t.Fatalf("cfq should bias reads: %d reads vs %d writes", reads, writes)
	}
	if writes == 0 {
		t.Fatal("cfq must not starve writes entirely")
	}
}

func TestPASPromotesPredictedHLRead(t *testing.T) {
	hl := true
	p := NewIdealPAS(func(blockdev.Request, simclock.Time, int) bool { return hl })
	p.Add(item(1, blockdev.Write, 0))
	p.Add(item(2, blockdev.Write, 1))
	p.Add(item(3, blockdev.Read, 2))
	it, _ := p.Next(10)
	if it.Req.Op != blockdev.Read {
		t.Fatal("predicted-HL read should be promoted ahead of writes")
	}
	// With an NL prediction the original order stands.
	hl = false
	it, _ = p.Next(10)
	if it.Seq != 1 {
		t.Fatalf("NL prediction should keep FIFO order, got seq %d", it.Seq)
	}
}

func TestPASSingleDirectionIsFIFO(t *testing.T) {
	p := NewIdealPAS(func(blockdev.Request, simclock.Time, int) bool { return true })
	p.Add(item(1, blockdev.Read, 0))
	p.Add(item(2, blockdev.Read, 1))
	it, _ := p.Next(5)
	if it.Seq != 1 {
		t.Fatalf("single-direction queue must be FIFO, got %d", it.Seq)
	}
}

func TestDriveCompletesEverything(t *testing.T) {
	dev := ssd.MustNew(ssd.PresetG(3))
	now := trace.Precondition(dev, 3, 1.2, 0)
	reqs := trace.Generate(trace.Build, dev.CapacitySectors(), 4, 3000)
	arr := host.OpenLoopArrivals(reqs, simclock.Time(200*time.Microsecond), 5)
	recs := host.Drive(dev, NewNoop(), shift(arr, now))
	if len(recs) != len(arr) {
		t.Fatalf("completed %d of %d", len(recs), len(arr))
	}
	for i, r := range recs {
		if r.Dispatch.Before(r.Arrive) || r.Done.Before(r.Dispatch) {
			t.Fatalf("record %d violates causality: %+v", i, r)
		}
	}
}

func shift(arr []host.Arrival, by simclock.Time) []host.Arrival {
	out := make([]host.Arrival, len(arr))
	for i, a := range arr {
		out[i] = host.Arrival{Req: a.Req, At: a.At + by}
	}
	return out
}

// TestPASBeatsNoopOnTail is the Fig. 13/14 shape test: on a fore-type,
// read-trigger device with a mixed workload, PAS should cut the read
// tail latency relative to noop.
func TestPASBeatsNoopOnTail(t *testing.T) {
	runOne := func(mk func(dev *ssd.Device, now simclock.Time) host.Scheduler) (readTail simclock.Time, m host.Metrics) {
		dev := ssd.MustNew(ssd.PresetG(7))
		now := trace.Precondition(dev, 7, 1.2, 0)
		reqs := trace.Generate(trace.Build, dev.CapacitySectors(), 8, 12000)
		gap, now := host.CalibrateMeanGap(dev, trace.Build, 9, 1500, 0.65, now)
		arr := host.OpenLoopArrivals(reqs, gap, 10)
		recs := host.Drive(dev, mk(dev, now), shift(arr, now))
		reads := host.FilterOp(recs, blockdev.Read)
		return host.PercentileLatency(reads, 0.99), host.Summarize(recs)
	}

	noopTail, noopM := runOne(func(*ssd.Device, simclock.Time) host.Scheduler { return NewNoop() })
	idealTail, _ := runOne(func(dev *ssd.Device, _ simclock.Time) host.Scheduler {
		return NewIdealPAS(func(req blockdev.Request, at simclock.Time, pending int) bool {
			return dev.WouldStallReadAfterWrites(req.LBA, at, pending)
		})
	})
	pasTail, pasM := runOne(func(dev *ssd.Device, now simclock.Time) host.Scheduler {
		feats := &extract.Features{
			BufferBytes:     128 * 1024,
			BufferKind:      extract.BufferFore,
			FlushAlgorithms: []extract.FlushAlgorithm{extract.FlushFull, extract.FlushReadTrigger},
			ReadThreshold:   200 * time.Microsecond,
			WriteThreshold:  200 * time.Microsecond,
			FlushOverhead:   time.Millisecond,
			GCOverhead:      30 * time.Millisecond,
		}
		return NewPAS(core.NewPredictor(feats, core.Params{}))
	})

	if idealTail >= noopTail {
		t.Fatalf("ideal PAS read P99 %v should beat noop %v", idealTail, noopTail)
	}
	if pasTail >= noopTail {
		t.Fatalf("PAS read P99 %v should beat noop %v", pasTail, noopTail)
	}
	// Serving reads first also avoids needless read-trigger flushes, so
	// overall throughput must not collapse.
	if pasM.ThroughputMBps < noopM.ThroughputMBps*0.9 {
		t.Fatalf("PAS throughput %.2f collapsed vs noop %.2f", pasM.ThroughputMBps, noopM.ThroughputMBps)
	}
}

func TestFIOSHoldsReadsDuringWriteBatch(t *testing.T) {
	f := NewFIOS()
	// Start a write batch.
	f.Add(item(1, blockdev.Write, 0))
	it, _ := f.Next(0)
	if it.Req.Op != blockdev.Write {
		t.Fatal("first dispatch should start the write batch")
	}
	// A read arrives mid-batch with more writes queued: held back.
	f.Add(item(2, blockdev.Read, 1))
	f.Add(item(3, blockdev.Write, 1))
	it, _ = f.Next(2)
	if it.Req.Op != blockdev.Read {
		// classic FIOS keeps batching writes while under the limit
		// and reads wait — the assumption under test
		if it.Req.Op != blockdev.Write {
			t.Fatalf("unexpected dispatch %v", it.Req.Op)
		}
	} else {
		t.Fatal("classic FIOS must hold the read during a write batch")
	}
}

func TestFIOSWithPredictorReleasesNLReads(t *testing.T) {
	feats := &extract.Features{
		BufferBytes:     248 * 1024,
		BufferKind:      extract.BufferBack,
		FlushAlgorithms: []extract.FlushAlgorithm{extract.FlushFull},
		ReadThreshold:   200 * time.Microsecond,
		WriteThreshold:  150 * time.Microsecond,
		FlushOverhead:   2 * time.Millisecond,
		GCOverhead:      40 * time.Millisecond,
	}
	pr := core.NewPredictor(feats, core.Params{})
	f := NewFIOSWithPredictor(pr)

	f.Add(item(1, blockdev.Write, 0))
	f.Next(0) // batch starts
	f.Add(item(2, blockdev.Read, 1))
	f.Add(item(3, blockdev.Write, 1))
	// Media idle, buffer far from full: the read is predicted NL and
	// must be released immediately despite the in-progress batch.
	it, _ := f.Next(2)
	if it.Req.Op != blockdev.Read {
		t.Fatalf("predicted-NL read not released, got %v", it.Req.Op)
	}
}

// TestFIOSSSDcheckImprovesReadLatency is the §VII suggestion as a
// measurement: on a back-type device (reads after writes are usually
// fine), lifting FIOS's blanket assumption with predictions improves
// read responsiveness without hurting throughput.
func TestFIOSSSDcheckImprovesReadLatency(t *testing.T) {
	run := func(mk func(dev *ssd.Device) host.Scheduler) (host.Metrics, simclock.Time) {
		dev := ssd.MustNew(ssd.PresetA(19))
		now := trace.Precondition(dev, 19, 1.2, 0)
		reqs := trace.Generate(trace.Build, dev.CapacitySectors(), 20, 10000)
		gap, now := host.CalibrateMeanGap(dev, trace.Build, 21, 1200, 0.5, now)
		arr := host.OpenLoopArrivals(reqs, gap, 22)
		recs := host.Drive(dev, mk(dev), shift(arr, now))
		reads := host.FilterOp(recs, blockdev.Read)
		return host.Summarize(recs), host.PercentileLatency(reads, 0.5)
	}

	_, classicP50 := run(func(*ssd.Device) host.Scheduler { return NewFIOS() })
	_, assistedP50 := run(func(dev *ssd.Device) host.Scheduler {
		feats := &extract.Features{
			BufferBytes:      248 * 1024,
			BufferKind:       extract.BufferBack,
			FlushAlgorithms:  []extract.FlushAlgorithm{extract.FlushFull},
			ReadThreshold:    200 * time.Microsecond,
			WriteThreshold:   150 * time.Microsecond,
			FlushOverhead:    2 * time.Millisecond,
			GCOverhead:       40 * time.Millisecond,
			GCIntervalWrites: []float64{900, 1000, 1100, 1200, 1300},
		}
		return NewFIOSWithPredictor(core.NewPredictor(feats, core.Params{}))
	})

	if assistedP50 >= classicP50 {
		t.Fatalf("SSDcheck-assisted FIOS median read %v should beat classic %v", assistedP50, classicP50)
	}
}

func TestPASRespectsBarriers(t *testing.T) {
	p := NewIdealPAS(func(blockdev.Request, simclock.Time, int) bool { return true })
	w1 := item(1, blockdev.Write, 0)
	w1.Barrier = true // e.g. a journal commit
	p.Add(w1)
	p.Add(item(2, blockdev.Read, 1))
	// The read is predicted HL but sits behind a barrier: order holds.
	it, _ := p.Next(5)
	if it.Seq != 1 {
		t.Fatalf("promotion crossed a barrier: dispatched seq %d first", it.Seq)
	}
	it, _ = p.Next(6)
	if it.Seq != 2 {
		t.Fatalf("read lost after barrier: seq %d", it.Seq)
	}
}

// TestPASRecordsPromotions: with a recorder attached, every promotion
// decision is counted as a "pas_promote" event attributed to the
// scheduler's name; plain FIFO dispatches stay silent.
func TestPASRecordsPromotions(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewIdealPAS(func(blockdev.Request, simclock.Time, int) bool { return true })
	p.SetRecorder(obs.Observer{Reg: reg})

	p.Add(item(1, blockdev.Write, 0))
	p.Add(item(2, blockdev.Read, 1))
	if it, _ := p.Next(5); it.Req.Op != blockdev.Read {
		t.Fatal("HL read not promoted")
	}
	promotions := reg.Counter("ssdcheck_events_total", "",
		obs.Label{Name: "event", Value: "pas_promote"},
		obs.Label{Name: "subject", Value: "ideal"})
	if got := promotions.Value(); got != 1 {
		t.Fatalf("pas_promote count = %d, want 1", got)
	}

	// The remaining write dispatches FIFO — no new event.
	if it, ok := p.Next(6); !ok || it.Req.Op != blockdev.Write {
		t.Fatal("write not dispatched")
	}
	if got := promotions.Value(); got != 1 {
		t.Fatalf("pas_promote count after FIFO dispatch = %d, want 1", got)
	}
}

// TestPASFallbackPredictorIsFIFO is the fleet fallback regression: a
// predictor the calibrator has condemned — exactly what a fleet device
// in fallback mode serves from — must never poison scheduling. PAS
// degrades to pure FIFO and records zero promotions.
func TestPASFallbackPredictorIsFIFO(t *testing.T) {
	feats := &extract.Features{
		BufferBytes:     128 * 1024,
		BufferKind:      extract.BufferBack,
		FlushAlgorithms: []extract.FlushAlgorithm{extract.FlushFull},
		ReadThreshold:   200 * time.Microsecond,
		WriteThreshold:  150 * time.Microsecond,
		FlushOverhead:   time.Millisecond,
		GCOverhead:      30 * time.Millisecond,
	}
	pr := core.NewPredictor(feats, core.Params{DisableMinSamples: 50})
	// Condemn it: unpredictable HL stalls until the calibrator's
	// degradation ladder disables prediction.
	req := blockdev.Request{Op: blockdev.Write, LBA: 0, Sectors: 8}
	now := simclock.Time(0)
	for i := 0; i < 5000 && pr.Enabled(); i++ {
		done := now.Add(3 * time.Millisecond)
		pr.Observe(req, now, done)
		now = done.Add(time.Millisecond)
	}
	if pr.Enabled() {
		t.Fatal("predictor failed to disable under hopeless accuracy")
	}

	reg := obs.NewRegistry()
	p := NewPAS(pr)
	p.SetRecorder(obs.Observer{Reg: reg})
	p.Add(item(1, blockdev.Write, 0))
	p.Add(item(2, blockdev.Write, 1))
	p.Add(item(3, blockdev.Read, 2))
	for want := uint64(1); want <= 3; want++ {
		it, ok := p.Next(simclock.Time(10))
		if !ok || it.Seq != want {
			t.Fatalf("fallback PAS broke FIFO: got seq %v ok=%v want %d", it.Seq, ok, want)
		}
	}
	promotions := reg.Counter("ssdcheck_events_total", "",
		obs.Label{Name: "event", Value: "pas_promote"},
		obs.Label{Name: "subject", Value: "pas"})
	if got := promotions.Value(); got != 0 {
		t.Fatalf("fallback PAS recorded %d promotions, want 0", got)
	}
}
