package sched

import (
	"container/list"

	"ssdcheck/internal/blockdev"
	"ssdcheck/internal/core"
	"ssdcheck/internal/host"
	"ssdcheck/internal/simclock"
)

// FIOS reimplements the policy essence of FIOS (Park & Shen, FAST '12)
// that the paper's related-work section discusses (§VII): a fair flash
// I/O scheduler built on the *assumption that reads issued after writes
// are always slow*. FIOS therefore never interleaves: once writes start
// dispatching, arriving reads are held back until the write batch
// drains, trading read responsiveness for predictable batching.
//
// The paper suggests SSDcheck can lift exactly that assumption: "By
// mitigating such strong assumption with the help of SSDcheck, FIOS can
// improve the responsiveness." NewFIOSWithPredictor builds that variant:
// a read held behind writes is released immediately when the prediction
// engine says it would be NL anyway — on a back-type buffer, most reads
// after writes are perfectly fast, and only drain windows matter.
type FIOS struct {
	name string
	pred ReadPredictor // nil = classic FIOS (assume read-after-write slow)

	reads, writes list.List // of host.Item
	writeBatch    int       // writes dispatched in the current batch
	batchLimit    int       // writes per batch before reads get a turn
}

// NewFIOS builds the classic scheduler with the read-after-write
// assumption.
func NewFIOS() *FIOS {
	return &FIOS{name: "fios", batchLimit: 64}
}

// NewFIOSWithPredictor builds the SSDcheck-assisted variant.
func NewFIOSWithPredictor(p *core.Predictor) *FIOS {
	return &FIOS{name: "fios+ssdcheck", pred: SSDcheckPredictor{P: p}, batchLimit: 64}
}

// Name implements host.Scheduler.
func (f *FIOS) Name() string { return f.name }

// Add implements host.Scheduler.
func (f *FIOS) Add(it host.Item) {
	if it.Req.Op == blockdev.Read {
		f.reads.PushBack(it)
	} else {
		f.writes.PushBack(it)
	}
}

// Len implements host.Scheduler.
func (f *FIOS) Len() int { return f.reads.Len() + f.writes.Len() }

// OnComplete implements host.Scheduler.
func (f *FIOS) OnComplete(req blockdev.Request, dispatch, done simclock.Time) {
	if f.pred != nil {
		f.pred.Observe(req, dispatch, done)
	}
}

// Next implements host.Scheduler.
func (f *FIOS) Next(now simclock.Time) (host.Item, bool) {
	if f.Len() == 0 {
		return host.Item{}, false
	}

	// Reads waiting while a write batch is in progress: classic FIOS
	// holds them until the batch completes; the SSDcheck variant
	// releases a read the engine predicts NL.
	if f.reads.Len() > 0 {
		if f.writeBatch == 0 || f.writes.Len() == 0 {
			// No batch in progress: reads go first (fairness epochs
			// favor the latency-sensitive class).
			f.writeBatch = 0
			return pop(&f.reads), true
		}
		if f.pred != nil {
			it := f.reads.Front().Value.(host.Item)
			if !f.pred.PredictHL(it.Req, now, 0) {
				// Predicted NL even right after writes: the FIOS
				// assumption does not hold for this read; dispatch
				// it without waiting for the batch.
				f.reads.Remove(f.reads.Front())
				return it, true
			}
		}
	}

	// Continue or start a write batch.
	if f.writes.Len() > 0 && (f.reads.Len() == 0 || f.writeBatch < f.batchLimit) {
		f.writeBatch++
		return pop(&f.writes), true
	}

	// Batch limit hit with reads waiting: close the batch.
	f.writeBatch = 0
	if f.reads.Len() > 0 {
		return pop(&f.reads), true
	}
	f.writeBatch++
	return pop(&f.writes), true
}
