package sched

import (
	"container/list"

	"ssdcheck/internal/blockdev"
	"ssdcheck/internal/core"
	"ssdcheck/internal/host"
	"ssdcheck/internal/obs"
	"ssdcheck/internal/simclock"
)

// ReadPredictor answers PAS's one question (paper §IV-B): would the
// oldest queued read, served in its *original order* behind
// pendingWritePages of older writes, be high-latency? The production
// implementation is SSDcheck's prediction engine; the ideal variant
// plugs in a ground-truth oracle.
type ReadPredictor interface {
	PredictHL(req blockdev.Request, now simclock.Time, pendingWritePages int) bool
	Observe(req blockdev.Request, dispatch, done simclock.Time)
}

// SSDcheckPredictor adapts core.Predictor to the PAS interface.
type SSDcheckPredictor struct {
	P *core.Predictor
}

// PredictHL implements ReadPredictor.
func (s SSDcheckPredictor) PredictHL(req blockdev.Request, now simclock.Time, pendingWritePages int) bool {
	return s.P.PredictReadInOrder(req, now, pendingWritePages).HL
}

// Observe implements ReadPredictor.
func (s SSDcheckPredictor) Observe(req blockdev.Request, dispatch, done simclock.Time) {
	s.P.Observe(req, dispatch, done)
}

// OracleFunc adapts a ground-truth closure (evaluation only) to the PAS
// interface — the "ideal" scheduler of Fig. 14 whose gap to real PAS is
// exactly the cost of misprediction.
type OracleFunc func(req blockdev.Request, now simclock.Time, pendingWritePages int) bool

// PredictHL implements ReadPredictor.
func (f OracleFunc) PredictHL(req blockdev.Request, now simclock.Time, pendingWritePages int) bool {
	return f(req, now, pendingWritePages)
}

// Observe implements ReadPredictor.
func (OracleFunc) Observe(blockdev.Request, simclock.Time, simclock.Time) {}

// PAS is the paper's SSD-only Prediction-Aware Scheduler (§IV-B): FIFO
// order, except that when the oldest read is predicted high-latency —
// meaning a buffer flush is imminent or in progress — the read is
// promoted ahead of older writes so it is serviced before the NAND is
// occupied by the drain.
type PAS struct {
	name string
	pred ReadPredictor
	q    list.List // of host.Item, arrival order

	// rec, when set, receives dispatch events: "pas_promote" every
	// time a predicted-HL read jumps the write queue. nil stays
	// silent.
	rec obs.Recorder
}

// SetRecorder attaches an observability recorder so promotion
// decisions are counted (event "pas_promote", subject = scheduler
// name).
func (p *PAS) SetRecorder(rec obs.Recorder) { p.rec = rec }

// NewPAS builds a PAS fed by SSDcheck's prediction engine.
func NewPAS(p *core.Predictor) *PAS {
	return &PAS{name: "pas", pred: SSDcheckPredictor{P: p}}
}

// NewIdealPAS builds the oracle-fed upper bound of Fig. 14.
func NewIdealPAS(oracle OracleFunc) *PAS {
	return &PAS{name: "ideal", pred: oracle}
}

// Name implements host.Scheduler.
func (p *PAS) Name() string { return p.name }

// Add implements host.Scheduler.
func (p *PAS) Add(it host.Item) { p.q.PushBack(it) }

// Len implements host.Scheduler.
func (p *PAS) Len() int { return p.q.Len() }

// OnComplete implements host.Scheduler: every completion feeds the
// latency monitor so the underlying model stays calibrated.
func (p *PAS) OnComplete(req blockdev.Request, dispatch, done simclock.Time) {
	p.pred.Observe(req, dispatch, done)
}

// Next implements host.Scheduler, following the paper's dispatch rule:
// if the queue is single-direction, FIFO; otherwise query the prediction
// for the oldest read and promote it when it is expected HL; in all
// other cases dispatch the oldest request.
func (p *PAS) Next(now simclock.Time) (host.Item, bool) {
	front := p.q.Front()
	if front == nil {
		return host.Item{}, false
	}

	var oldestRead *list.Element
	mixed := false
	pendingWritePages := 0
	firstOp := front.Value.(host.Item).Req.Op
	for e := p.q.Front(); e != nil; e = e.Next() {
		it := e.Value.(host.Item)
		if it.Barrier {
			// Strict ordering point: nothing behind it may be
			// promoted past it (paper §IV-B).
			break
		}
		if it.Req.Op != firstOp {
			mixed = true
		}
		if it.Req.Op == blockdev.Read {
			oldestRead = e
			break
		}
		pendingWritePages += (it.Req.Sectors + blockdev.SectorsPerPage - 1) / blockdev.SectorsPerPage
	}

	if mixed && oldestRead != nil &&
		p.pred.PredictHL(oldestRead.Value.(host.Item).Req, now, pendingWritePages) {
		it := oldestRead.Value.(host.Item)
		p.q.Remove(oldestRead)
		if p.rec != nil {
			p.rec.Event("pas_promote", p.name)
		}
		return it, true
	}
	p.q.Remove(front)
	return front.Value.(host.Item), true
}
