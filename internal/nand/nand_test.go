package nand

import (
	"testing"
	"testing/quick"
	"time"
)

func proto() Geometry {
	// The paper's prototype: 4 channels, 4 chips/channel, 2 planes
	// (folded as 1 die × 2 planes), i.e. 32 planes.
	return Geometry{
		Channels: 4, ChipsPerChannel: 4, DiesPerChip: 1, PlanesPerDie: 2,
		BlocksPerPlane: 64, PagesPerBlock: 128, PageSize: 4096,
	}
}

func TestGeometryCounts(t *testing.T) {
	g := proto()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Planes() != 32 {
		t.Fatalf("planes=%d", g.Planes())
	}
	if g.Blocks() != 32*64 {
		t.Fatalf("blocks=%d", g.Blocks())
	}
	if g.Pages() != 32*64*128 {
		t.Fatalf("pages=%d", g.Pages())
	}
	if g.CapacityBytes() != int64(32*64*128)*4096 {
		t.Fatalf("capacity=%d", g.CapacityBytes())
	}
}

func TestGeometryValidate(t *testing.T) {
	g := proto()
	g.PagesPerBlock = 0
	if g.Validate() == nil {
		t.Fatal("zero pages per block should be invalid")
	}
}

func TestGeometrySplit(t *testing.T) {
	g := proto()
	half := g.Split(2)
	if half.Planes() != 16 {
		t.Fatalf("half planes=%d", half.Planes())
	}
	quarter := g.Split(4)
	if quarter.Planes() != 8 {
		t.Fatalf("quarter planes=%d", quarter.Planes())
	}
	if g.Split(1) != g {
		t.Fatal("split 1 should be identity")
	}
	if half.CapacityBytes()*2 != g.CapacityBytes() {
		t.Fatal("split must preserve total capacity")
	}
}

func TestGeometrySplitPanicsOnOdd(t *testing.T) {
	g := proto()
	g.Channels, g.ChipsPerChannel, g.PlanesPerDie = 3, 1, 1
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic splitting 3 planes 2 ways")
		}
	}()
	g.Split(2)
}

func TestDefaultTimingSanity(t *testing.T) {
	tm := DefaultTiming()
	if tm.ReadPage != 60*time.Microsecond || tm.ProgramPage != 1000*time.Microsecond || tm.EraseBlock != 3500*time.Microsecond {
		t.Fatalf("paper timings not respected: %+v", tm)
	}
	// NL read of one page should land well under the 250us threshold.
	if c := tm.ReadCost(1, 32); c > 250*time.Microsecond {
		t.Fatalf("single-page read cost %v exceeds NL threshold", c)
	}
}

func TestFlushCost(t *testing.T) {
	tm := DefaultTiming()
	// 62 pages (248KB buffer) over 32 planes: two program rounds.
	c := tm.FlushCost(62, 32)
	if c < 2*tm.ProgramPage || c > 2*tm.ProgramPage+time.Duration(62)*tm.Transfer {
		t.Fatalf("flush cost %v outside expected band", c)
	}
	if tm.FlushCost(0, 32) != 0 {
		t.Fatal("empty flush should be free")
	}
	// Halving planes should not decrease the cost.
	if tm.FlushCost(62, 16) < c {
		t.Fatal("fewer planes must not flush faster")
	}
}

func TestGCCostMonotone(t *testing.T) {
	tm := DefaultTiming()
	if tm.GCCost(0) != tm.EraseBlock {
		t.Fatalf("zero-valid GC should cost exactly one erase, got %v", tm.GCCost(0))
	}
	prev := time.Duration(0)
	for v := 0; v <= 128; v += 8 {
		c := tm.GCCost(v)
		if c < prev {
			t.Fatalf("GC cost must be nondecreasing in valid pages: %v < %v at v=%d", c, prev, v)
		}
		prev = c
	}
	// A full-valid victim should take tens of milliseconds — the
	// magnitude the paper attributes to GC.
	if c := tm.GCCost(128); c < 10*time.Millisecond {
		t.Fatalf("full GC suspiciously cheap: %v", c)
	}
}

func TestCostPropertiesQuick(t *testing.T) {
	tm := DefaultTiming()
	f := func(pages, planes uint8) bool {
		p := int(pages%200) + 1
		pl := int(planes%64) + 1
		read := tm.ReadCost(p, pl)
		flush := tm.FlushCost(p, pl)
		return read > 0 && flush > 0 &&
			tm.ReadCost(p+1, pl) >= read &&
			tm.FlushCost(p+1, pl) >= flush
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
