// Package nand models the geometry and operation timings of the NAND
// flash array inside a simulated SSD. It answers cost questions — how
// long does a page read, a buffer flush striped over this many planes, a
// GC merge, an erase take — and leaves occupancy bookkeeping to the FTL.
//
// Default timings follow the paper (§II-A): read ~60 µs, program
// ~1000 µs, erase ~3500 µs per block.
package nand

import (
	"fmt"
	"time"
)

// Geometry describes a flash array (or a volume's share of one).
type Geometry struct {
	Channels        int // independent channels
	ChipsPerChannel int // chips on each channel
	DiesPerChip     int // dies per chip
	PlanesPerDie    int // planes per die; planes are the parallel unit
	BlocksPerPlane  int // erase blocks per plane
	PagesPerBlock   int // program/read pages per block
	PageSize        int // bytes per page
}

// Validate reports a descriptive error if any dimension is non-positive.
func (g Geometry) Validate() error {
	if g.Channels <= 0 || g.ChipsPerChannel <= 0 || g.DiesPerChip <= 0 ||
		g.PlanesPerDie <= 0 || g.BlocksPerPlane <= 0 || g.PagesPerBlock <= 0 ||
		g.PageSize <= 0 {
		return fmt.Errorf("nand: invalid geometry %+v", g)
	}
	return nil
}

// Planes returns the total number of planes — the degree of internal
// write parallelism.
func (g Geometry) Planes() int {
	return g.Channels * g.ChipsPerChannel * g.DiesPerChip * g.PlanesPerDie
}

// Blocks returns the total number of erase blocks.
func (g Geometry) Blocks() int { return g.Planes() * g.BlocksPerPlane }

// Pages returns the total number of physical pages.
func (g Geometry) Pages() int { return g.Blocks() * g.PagesPerBlock }

// CapacityBytes returns the raw capacity in bytes.
func (g Geometry) CapacityBytes() int64 {
	return int64(g.Pages()) * int64(g.PageSize)
}

// Split returns the geometry of one of n equal shares of g, used when an
// SSD partitions its array into n internal volumes. It panics if the
// array cannot be divided evenly at some level; presets are constructed
// so it always can.
func (g Geometry) Split(n int) Geometry {
	out := g
	for _, f := range []*int{&out.Channels, &out.ChipsPerChannel, &out.DiesPerChip, &out.PlanesPerDie} {
		for n > 1 && *f%2 == 0 {
			*f /= 2
			n /= 2
		}
	}
	if n != 1 {
		panic(fmt.Sprintf("nand: cannot split geometry into equal volumes, %d ways remain", n))
	}
	return out
}

// Timing holds per-operation durations.
type Timing struct {
	ReadPage    time.Duration // NAND array read of one page
	ProgramPage time.Duration // NAND program of one page
	ProgramSLC  time.Duration // program of one page in SLC mode (0 = no SLC)
	EraseBlock  time.Duration // block erase
	Transfer    time.Duration // channel transfer of one page
	Firmware    time.Duration // fixed firmware/controller overhead per request
	BufferAck   time.Duration // acknowledging a buffered write
	BufferRead  time.Duration // serving a read straight from the write buffer
	// GCPipeline is the effective overlap factor of GC merge traffic:
	// valid-page copies proceed roughly GCPipeline at a time across
	// planes and the channel.
	GCPipeline int
}

// DefaultTiming returns the paper's NAND timings with controller-side
// constants chosen to land normal-latency reads near 95 µs and buffered
// writes near 30 µs (SATA-SSD-like, and comfortably under the paper's
// 250 µs NL/HL threshold).
func DefaultTiming() Timing {
	return Timing{
		ReadPage:    60 * time.Microsecond,
		ProgramPage: 1000 * time.Microsecond,
		ProgramSLC:  300 * time.Microsecond,
		EraseBlock:  3500 * time.Microsecond,
		Transfer:    8 * time.Microsecond, // ~500 MB/s channel, SATA-class
		Firmware:    10 * time.Microsecond,
		BufferAck:   20 * time.Microsecond,
		BufferRead:  15 * time.Microsecond,
		GCPipeline:  8,
	}
}

// ReadCost returns the service time of an uninterfered read of pages
// pages from an array with planes planes: one array read latency plus
// serialized channel transfers, plus firmware overhead. Parallel plane
// reads overlap the array portion.
func (t Timing) ReadCost(pages, planes int) time.Duration {
	if pages <= 0 {
		pages = 1
	}
	rounds := (pages + planes - 1) / planes
	return t.Firmware + time.Duration(rounds)*t.ReadPage + time.Duration(pages)*t.Transfer
}

// FlushCost returns how long draining pages buffered pages to the NAND
// takes when striped across planes planes.
func (t Timing) FlushCost(pages, planes int) time.Duration {
	return t.flushCost(pages, planes, t.ProgramPage)
}

// FlushCostSLC is FlushCost with the pages programmed in SLC mode.
func (t Timing) FlushCostSLC(pages, planes int) time.Duration {
	prog := t.ProgramSLC
	if prog == 0 {
		prog = t.ProgramPage
	}
	return t.flushCost(pages, planes, prog)
}

func (t Timing) flushCost(pages, planes int, prog time.Duration) time.Duration {
	if pages <= 0 {
		return 0
	}
	rounds := (pages + planes - 1) / planes
	return time.Duration(rounds)*prog + time.Duration(pages)*t.Transfer/time.Duration(planes)
}

// MergeCost returns the cost of relocating valid valid pages during GC.
func (t Timing) MergeCost(valid int) time.Duration {
	if valid <= 0 {
		return 0
	}
	pipe := t.GCPipeline
	if pipe < 1 {
		pipe = 1
	}
	per := t.ReadPage + t.ProgramPage
	return time.Duration((valid+pipe-1)/pipe) * per
}

// GCCost returns the full cost of one victim reclamation: merging valid
// valid pages then erasing the block.
func (t Timing) GCCost(valid int) time.Duration {
	return t.MergeCost(valid) + t.EraseBlock
}
