package fleet

import (
	"encoding/json"
	"fmt"

	"ssdcheck/internal/core"
	"ssdcheck/internal/extract"
	"ssdcheck/internal/simclock"
)

// ModelHealth is a fleet device's position in the model-health state
// machine — the predictor-quality counterpart of the resilience Health
// machine:
//
//	calibrated → drifting → fallback → rediagnosing → calibrated
//	     ↑__________|            ↑___________|  (re-diagnosis fail)
//	                             (accuracy recovers before fallback)
//
// A device drifts when the predictor's sliding HL accuracy falls under
// the configured floor (or the calibrator takes its own kill switch),
// falls back to conservative static predictions when the drift
// persists, and returns to calibrated only after an online
// re-diagnosis rebuilds its feature set and hot-swaps a fresh
// predictor.
type ModelHealth uint8

const (
	// ModelCalibrated devices serve live model predictions.
	ModelCalibrated ModelHealth = iota
	// ModelDrifting devices still predict from the live model, but
	// their sliding accuracy is under the floor; sustained drift falls
	// back, recovery re-calibrates.
	ModelDrifting
	// ModelFallback devices serve conservative static always-NL
	// predictions (the paper's harmless fallback) flagged in
	// Result.Fallback so schedulers stop trusting them.
	ModelFallback
	// ModelRediagnosing devices are mid re-diagnosis: probe stages run
	// interleaved with live traffic (still served in fallback mode) on
	// the owning shard, so no request is dropped or reordered.
	ModelRediagnosing
)

// String names the state for logs and wire formats.
func (h ModelHealth) String() string {
	switch h {
	case ModelCalibrated:
		return "calibrated"
	case ModelDrifting:
		return "drifting"
	case ModelFallback:
		return "fallback"
	case ModelRediagnosing:
		return "rediagnosing"
	default:
		return fmt.Sprintf("modelhealth(%d)", uint8(h))
	}
}

// Conservative reports whether a device in this state serves
// conservative static always-NL predictions instead of live model
// output: fallback, and rediagnosing (the rebuilt model is not sworn in
// until its probes validate). Schedulers should stop trusting the
// predictions of a conservative device; the daemon's health report and
// the fleet metrics count these states the same way.
func (h ModelHealth) Conservative() bool {
	return h == ModelFallback || h == ModelRediagnosing
}

// MarshalJSON renders the state as its string name.
func (h ModelHealth) MarshalJSON() ([]byte, error) {
	return []byte(`"` + h.String() + `"`), nil
}

// UnmarshalJSON parses the string names MarshalJSON emits.
func (h *ModelHealth) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "calibrated":
		*h = ModelCalibrated
	case "drifting":
		*h = ModelDrifting
	case "fallback":
		*h = ModelFallback
	case "rediagnosing":
		*h = ModelRediagnosing
	default:
		return fmt.Errorf("fleet: unknown model-health state %q", s)
	}
	return nil
}

// ModelTransition is one edge taken in a device's model-health state
// machine. Seq is the device's request sequence number at the
// transition (the same counter HealthTransition stamps), so with
// in-order per-device submission the log is a deterministic function
// of the request stream and the fault schedule — byte-identical across
// shard counts.
type ModelTransition struct {
	Seq   int64       `json:"seq"`
	From  ModelHealth `json:"from"`
	To    ModelHealth `json:"to"`
	Cause string      `json:"cause"`
}

// ModelReport is the detailed per-device model view served by
// Manager.DeviceModel and the daemon's /v1/devices/{id}/model.
type ModelReport struct {
	ID          string      `json:"id"`
	ModelHealth ModelHealth `json:"model_health"`

	// PredictorEnabled mirrors the calibrator's own kill switch.
	PredictorEnabled bool `json:"predictor_enabled"`

	// HLAccuracy/NLAccuracy are the predictor's sliding-window
	// accuracies (1 on an empty window); HLWindow is the HL window
	// population the watchdog gates on.
	HLAccuracy float64 `json:"hl_accuracy"`
	NLAccuracy float64 `json:"nl_accuracy"`
	HLWindow   int     `json:"hl_window"`

	// DistResets counts calibrator GC-history resets — the rung of the
	// degradation ladder above harmless disable.
	DistResets int `json:"dist_resets"`

	// FallbackServed counts requests served conservatively since the
	// device last entered fallback; it triggers automatic re-diagnosis.
	FallbackServed int64 `json:"fallback_served"`

	// Rediags counts completed re-diagnosis attempts (passed or
	// failed).
	Rediags int `json:"rediags"`

	// Transitions is the full model-health transition log, oldest
	// first.
	Transitions []ModelTransition `json:"transitions"`
}

// DeviceModelLog pairs a device with its model-transition log;
// Manager.ModelLog returns one per device in configuration order so
// the fleet's model history marshals deterministically.
type DeviceModelLog struct {
	ID          string            `json:"id"`
	ModelHealth ModelHealth       `json:"model_health"`
	Transitions []ModelTransition `json:"transitions"`
}

// modelEvent names the recorder event for a model-health edge. The
// interesting edges get the names the runbooks grep for; the rest fall
// back to a generic "model_" prefix.
func modelEvent(from, to ModelHealth) string {
	switch to {
	case ModelDrifting:
		return "model_drift_detected"
	case ModelFallback:
		if from == ModelRediagnosing {
			return "rediag_failed"
		}
		return "model_fallback"
	case ModelRediagnosing:
		return "rediag_started"
	default: // ModelCalibrated
		if from == ModelRediagnosing {
			return "rediag_finished"
		}
		return "model_recovered"
	}
}

// modelTransitionLocked moves the device to a new model-health state
// and logs the edge. It runs on the owning shard goroutine with md.mu
// held.
func (md *managedDevice) modelTransitionLocked(to ModelHealth, cause string) {
	if md.modelHealth == to {
		return
	}
	md.modelLog = append(md.modelLog, ModelTransition{
		Seq: md.seq, From: md.modelHealth, To: to, Cause: cause,
	})
	md.rec.Event(modelEvent(md.modelHealth, to), md.id)
	md.modelHealth = to
	md.stats.vals[statModelTransitions]++
}

// enterFallbackLocked switches the device to conservative predictions
// and restarts the fallback-served counter that paces re-diagnosis.
func (md *managedDevice) enterFallbackLocked(cause string) {
	md.modelTransitionLocked(ModelFallback, cause)
	md.fallbackServed = 0
}

// noteModelLocked is the drift watchdog: it feeds one served
// completion's drift snapshot into the model-health state machine.
// It runs after every served request on the owning shard with md.mu
// held; the snapshot is taken outside the lock (the predictor is
// shard-owned) so readers never touch predictor state.
func (md *managedDevice) noteModelLocked(d core.DriftReport, mp ModelPolicy) {
	if mp.Disabled {
		return
	}
	switch md.modelHealth {
	case ModelCalibrated:
		switch {
		case !d.Enabled:
			md.driftAge = 0
			md.modelTransitionLocked(ModelDrifting, "calibrator disabled")
		case d.HLSeen >= mp.MinSamples && d.HLAccuracy() < mp.FloorHL:
			md.driftAge = 0
			md.modelTransitionLocked(ModelDrifting, "hl accuracy under floor")
		}
	case ModelDrifting:
		md.driftAge++
		switch {
		case !d.Enabled:
			md.enterFallbackLocked("calibrator disabled")
		case d.HLSeen >= mp.MinSamples && d.HLAccuracy() >= mp.RecoverAboveHL:
			md.modelTransitionLocked(ModelCalibrated, "accuracy recovered")
		case md.driftAge >= mp.FallbackAfter:
			// The drift budget is spent. Fall back only when the window
			// still sits under the floor — a genuinely sustained
			// collapse. A window that climbed back over the floor (but
			// not yet to the recovery bound) is a transient excursion:
			// end the episode without condemning the model, so chronic
			// mid-accuracy devices don't flap into fallback.
			if d.HLSeen >= mp.MinSamples && d.HLAccuracy() < mp.FloorHL {
				md.enterFallbackLocked("sustained drift")
			} else {
				md.driftAge = 0
				md.modelTransitionLocked(ModelCalibrated, "drift subsided")
			}
		}
	case ModelFallback:
		if mp.RediagAfter >= 0 && md.rediags < mp.MaxRediags &&
			md.fallbackServed >= int64(mp.RediagAfter) {
			md.modelTransitionLocked(ModelRediagnosing, "fallback budget spent")
		}
	}
}

// rediagRun is an in-flight online re-diagnosis: a budgeted subset of
// the extract pipeline split into stages, one stage per served request,
// so probe traffic interleaves with live traffic on the device's
// virtual clock without dropping or reordering anything.
type rediagRun struct {
	sess  *extract.Session
	opts  extract.Opts
	stage int
	start simclock.Time // device virtual clock at rediag start
	feats extract.Features
}

// rediagStages is how many served requests one re-diagnosis spans.
const rediagStages = 4

// rediagStep advances the device's re-diagnosis by one stage. It runs
// on the owning shard goroutine, outside md.mu, after the live request
// completes. Volume topology and SLC geometry are carried from the
// baseline diagnosis — the feature-shift faults this machinery answers
// change buffer and timing behavior, not the address layout — so the
// budgeted probes only re-measure thresholds, GC cadence, and the
// write buffer.
func (md *managedDevice) rediagStep(cfg Config) {
	r := md.rediag
	if r == nil {
		opts := cfg.Diagnosis.WithDefaults(md.dev.CapacitySectors())
		opts.GCIntervals = cfg.Model.RediagBudget
		seed := md.spec.Seed ^ 0x4ed1a6 ^ (uint64(md.rediags+1) * 0x9e3779b97f4a7c15)
		r = &rediagRun{
			sess:  extract.NewSession(md.dev, md.now, seed),
			opts:  opts,
			start: md.now,
		}
		r.feats.VolumeBits = append([]int(nil), md.feats.VolumeBits...)
		r.feats.SLCCachePages = md.feats.SLCCachePages
		r.feats.SLCFoldOverhead = md.feats.SLCFoldOverhead
		md.rediag = r
	}
	switch r.stage {
	case 0:
		r.feats.ReadThreshold, r.feats.WriteThreshold = extract.CalibrateThresholds(r.sess)
	case 1:
		// Fixed-pattern GC cadence only: MaxBit < MinBit skips the
		// per-bit Flip scans (topology is carried over), keeping the
		// probe inside the configured budget.
		opts := r.opts
		opts.MinBit, opts.MaxBit = 1, 0
		gc := extract.ScanGCVolumes(r.sess, opts, r.feats.VolumeBits)
		r.feats.GCIntervalWrites = gc.FixedIntervals
		r.feats.GCOverhead = gc.Overhead
	case 2:
		buf := extract.AnalyzeWriteBuffer(r.sess, r.opts, r.feats.VolumeBits,
			r.feats.ReadThreshold, r.feats.WriteThreshold)
		r.feats.BufferBytes = buf.Bytes
		r.feats.BufferKind = buf.Kind
		r.feats.FlushAlgorithms = buf.FlushAlgorithms
		r.feats.FlushOverhead = buf.FlushOverhead
	}
	md.now = r.sess.Now
	r.stage++
	if r.stage >= rediagStages {
		md.finishRediag(r)
	}
}

// finishRediag validates the rebuilt feature set and either hot-swaps
// a fresh predictor (calibrated) or returns to fallback. The swap
// happens between requests on the owning shard, so in-flight traffic
// is never dropped or reordered; readers only ever see the cached
// state published under md.mu.
func (md *managedDevice) finishRediag(r *rediagRun) {
	md.rediag = nil
	f := r.feats
	err := r.sess.Err()
	if err == nil && f.BufferKind == extract.BufferUnknown && f.BufferBytes == 0 {
		err = fmt.Errorf("extract: write buffer not identifiable")
	}
	if err == nil {
		err = f.Validate()
	}
	if err == nil {
		md.pr.Reset(&f)
		md.feats = &f
	}
	md.rediagH.Observe(md.now.Sub(r.start))

	md.mu.Lock()
	md.rediags++
	md.stats.vals[statRediags]++
	if err == nil {
		md.driftAge = 0
		md.fallbackServed = 0
		md.modelTransitionLocked(ModelCalibrated, "re-diagnosis pass")
	} else {
		md.enterFallbackLocked("re-diagnosis fail")
	}
	md.publishLocked()
	md.mu.Unlock()
}

// forceRediag runs a full re-diagnosis synchronously on the owning
// shard goroutine — the operator-initiated path behind
// Manager.Rediagnose. It bypasses the fallback pacing and the rediag
// cap (an explicit request is its own budget) but not quarantine: a
// device that is out of service cannot be probed.
func (md *managedDevice) forceRediag(cfg Config) error {
	md.mu.Lock()
	if md.health == Quarantined || md.health == Recovering {
		md.mu.Unlock()
		return fmt.Errorf("device %q: %w", md.id, ErrDeviceQuarantined)
	}
	md.modelTransitionLocked(ModelRediagnosing, "operator request")
	md.mu.Unlock()

	for i := 0; i < rediagStages+1; i++ {
		md.rediagStep(cfg)
		md.mu.Lock()
		done := md.rediag == nil
		ok := md.modelHealth == ModelCalibrated
		md.mu.Unlock()
		if done {
			if !ok {
				return fmt.Errorf("device %q: re-diagnosis failed", md.id)
			}
			return nil
		}
	}
	return fmt.Errorf("device %q: re-diagnosis did not converge", md.id)
}
