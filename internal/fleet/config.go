// Package fleet is the concurrent, multi-device layer of the
// reproduction: a manager that owns many simulated SSDs with one
// SSDcheck predictor each, shards them across a bounded pool of worker
// goroutines, and serves per-request predictions plus streaming fleet
// metrics. It is the scale-out counterpart of the strictly sequential
// single-device pipeline in internal/core — hyperscale operators run
// SSDcheck-style prediction across thousands of drives at once, and
// this package is the entry point for that deployment shape.
//
// Concurrency model: neither the simulator (internal/ssd) nor the
// predictor (internal/core) is safe for concurrent use, and the fleet
// never needs them to be. Every device is owned by exactly one shard,
// each shard is one goroutine, and all device/predictor state is
// touched only from that goroutine. Requests reach a shard through its
// channel; results travel back through per-batch synchronization. The
// only shared mutable state is the per-device stats block, which sits
// behind a mutex so metrics endpoints can read while shards write.
//
// Determinism: every device runs on its own virtual clock and every
// random decision (simulator noise, diagnosis probes, preconditioning)
// derives from the device's seed. Per-device request streams therefore
// produce byte-identical per-device stats regardless of shard count,
// scheduling order, or wall-clock behavior — fleet runs are exactly
// reproducible, including under the race detector.
package fleet

import (
	"fmt"
	"runtime"
	"time"

	"ssdcheck/internal/core"
	"ssdcheck/internal/extract"
	"ssdcheck/internal/faults"
	"ssdcheck/internal/obs"
	"ssdcheck/internal/simclock"
	"ssdcheck/internal/ssd"
)

// DeviceSpec describes one member of the fleet.
type DeviceSpec struct {
	// ID is the fleet-unique device identifier ("ssd-00", ...).
	ID string

	// Preset names the simulated device configuration ("A".."H", "X").
	// Ignored when Config is set.
	Preset string

	// Config, when non-nil, is an explicit simulator configuration that
	// overrides Preset.
	Config *ssd.Config

	// Seed drives everything random about this device: the simulator's
	// internal noise, preconditioning, and the diagnosis probes. Two
	// specs with equal configuration and seed behave identically.
	Seed uint64

	// Features, when non-nil, is a previously extracted diagnosis
	// (e.g. loaded from a file saved with extract.Features.Save); the
	// manager then skips probing the device at startup.
	Features *extract.Features

	// Params tunes this device's predictor; the zero value takes the
	// standard defaults.
	Params core.Params

	// Shard is a 1-based shard pin; 0 selects automatic round-robin
	// assignment. Pinning matters only for load placement — per-device
	// results are identical either way.
	Shard int

	// Faults, when non-nil, wraps the device in a fault injector with
	// this configuration (see internal/faults). The injector is armed
	// only after preconditioning and diagnosis finish, so schedules
	// count serving-traffic requests.
	Faults *faults.Config
}

// RetryPolicy bounds how the fleet retries requests that fail with a
// transient error. Backoff runs on the device's virtual clock with
// deterministic seeded jitter, so retry behavior is exactly
// reproducible.
type RetryPolicy struct {
	// MaxRetries is the retry budget per request beyond the first
	// attempt. 0 defaults to 3; negative disables retries.
	MaxRetries int

	// Backoff is the delay before the first retry; each further retry
	// doubles it. 0 defaults to 200µs (virtual).
	Backoff time.Duration

	// MaxBackoff caps the doubled delays. 0 defaults to 5ms.
	MaxBackoff time.Duration

	// Jitter is the fraction of each delay randomized away (full
	// jitter over [1-Jitter, 1]·delay). 0 defaults to 0.5; negative
	// disables jitter.
	Jitter float64
}

// WithDefaults fills zero fields with the standard defaults. Exported
// so other layers reusing the retry shape — the cluster's RPC
// transports back off with the same policy — normalize identically.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.Backoff == 0 {
		p.Backoff = 200 * time.Microsecond
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 5 * time.Millisecond
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// Delay returns the backoff before retry number retries (0-based):
// exponential doubling from Backoff, capped at MaxBackoff, with full
// seeded jitter over [1-Jitter, 1]·delay. The RNG is drawn exactly
// once per call when Jitter > 0, so callers sharing an RNG stream get
// reproducible schedules.
func (p RetryPolicy) Delay(retries int, rng *simclock.RNG) time.Duration {
	d := p.Backoff << retries
	if d > p.MaxBackoff || d <= 0 {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 {
		d = time.Duration(float64(d) * (1 - p.Jitter*rng.Float64()))
	}
	return d
}

func (p RetryPolicy) validate() error {
	if p.Backoff < 0 || p.MaxBackoff < 0 {
		return fmt.Errorf("fleet: negative retry backoff")
	}
	if p.Jitter > 1 {
		return fmt.Errorf("fleet: retry jitter %v > 1", p.Jitter)
	}
	return nil
}

// HealthPolicy tunes the per-device health state machine and the
// recovery probe (see Health for the state diagram). All streak
// thresholds count consecutive requests; the timeout is a per-request
// deadline on the virtual clock.
type HealthPolicy struct {
	// RequestTimeout is the per-request latency deadline: completions
	// at or above it count as latency anomalies and are excluded from
	// model observation. 0 defaults to 250ms (virtual).
	RequestTimeout time.Duration

	// DegradeAfterErrors moves healthy → degraded after this many
	// consecutive exhausted-retry errors. 0 defaults to 3.
	DegradeAfterErrors int

	// QuarantineAfterErrors moves degraded → quarantined after this
	// many consecutive errors. 0 defaults to 8.
	QuarantineAfterErrors int

	// DegradeAfterTimeouts moves healthy → degraded after this many
	// consecutive timeout-class completions. 0 defaults to 8.
	DegradeAfterTimeouts int

	// QuarantineAfterTimeouts moves degraded → quarantined after this
	// many consecutive timeouts. 0 defaults to 32.
	QuarantineAfterTimeouts int

	// RecoverAfterOK moves degraded → healthy after this many
	// consecutive clean completions. 0 defaults to 64.
	RecoverAfterOK int

	// ProbeAfterRejections triggers a recovery probe after a
	// quarantined device has bounced this many requests — a
	// deterministic trigger phrased in the device's own request
	// stream. 0 defaults to 128; negative disables the
	// rejection-count trigger.
	ProbeAfterRejections int

	// ProbeRequests is the length of the recovery probe pass. 0
	// defaults to 32.
	ProbeRequests int

	// ProbeInterval, when > 0, additionally probes quarantined
	// devices from a background wall-clock ticker (the daemon sets
	// this). It is off by default: wall-clock probing trades the
	// fleet's determinism for liveness under idle traffic.
	ProbeInterval time.Duration
}

func (p HealthPolicy) withDefaults() HealthPolicy {
	if p.RequestTimeout == 0 {
		p.RequestTimeout = 250 * time.Millisecond
	}
	if p.DegradeAfterErrors == 0 {
		p.DegradeAfterErrors = 3
	}
	if p.QuarantineAfterErrors == 0 {
		p.QuarantineAfterErrors = 8
	}
	if p.DegradeAfterTimeouts == 0 {
		p.DegradeAfterTimeouts = 8
	}
	if p.QuarantineAfterTimeouts == 0 {
		p.QuarantineAfterTimeouts = 32
	}
	if p.RecoverAfterOK == 0 {
		p.RecoverAfterOK = 64
	}
	if p.ProbeAfterRejections == 0 {
		p.ProbeAfterRejections = 128
	}
	if p.ProbeRequests == 0 {
		p.ProbeRequests = 32
	}
	return p
}

func (p HealthPolicy) validate() error {
	if p.RequestTimeout < 0 {
		return fmt.Errorf("fleet: negative request timeout")
	}
	for _, v := range []int{p.DegradeAfterErrors, p.QuarantineAfterErrors,
		p.DegradeAfterTimeouts, p.QuarantineAfterTimeouts, p.RecoverAfterOK, p.ProbeRequests} {
		if v < 0 {
			return fmt.Errorf("fleet: negative health threshold")
		}
	}
	if p.ProbeInterval < 0 {
		return fmt.Errorf("fleet: negative probe interval")
	}
	return nil
}

// ModelPolicy tunes the per-device model-health state machine: the
// drift watchdog layered on the predictor's sliding accuracy windows,
// the conservative fallback, and the budgeted online re-diagnosis (see
// ModelHealth for the state diagram). Streak thresholds count served
// completions on the device's own request stream, so the machine is
// deterministic across shard counts.
type ModelPolicy struct {
	// Disabled turns the whole model-health machine off: devices stay
	// calibrated forever and always serve live predictions.
	Disabled bool

	// FloorHL is the sliding HL accuracy under which a calibrated
	// device is declared drifting (once MinSamples HL observations are
	// in the window), and under which a spent drift budget condemns
	// the model to fallback. 0 defaults to 0.45 — above the
	// calibrator's own distribution-reset rung (0.35) so drift is
	// flagged before the ladder starts discarding history, but under
	// the steady-state accuracy of every built-in preset.
	FloorHL float64

	// MinSamples is the HL window population required before FloorHL
	// and RecoverAboveHL apply. It must sit under the calibrator's own
	// DisableMinSamples: the calibration ladder halves the windows on
	// every check and zeroes them on a distribution reset. 0 defaults
	// to 160.
	MinSamples int

	// RecoverAboveHL is the sliding HL accuracy at which a drifting
	// device re-calibrates without re-diagnosis (hysteresis against
	// flapping around the floor). 0 defaults to 0.75.
	RecoverAboveHL float64

	// FallbackAfter is how many served completions a device may spend
	// drifting before it falls back to conservative predictions. 0
	// defaults to 512.
	FallbackAfter int

	// RediagAfter is how many conservative completions a fallback
	// device serves before an automatic re-diagnosis starts. 0
	// defaults to 64; negative disables automatic re-diagnosis
	// (operator-initiated Rediagnose still works).
	RediagAfter int

	// RediagBudget bounds the re-diagnosis probes: it is the GC
	// interval count of the budgeted cadence probe. 0 defaults to 12.
	RediagBudget int

	// MaxRediags caps automatic re-diagnosis attempts per device;
	// after the cap, fallback is terminal (still overridable via
	// Rediagnose). 0 defaults to 8.
	MaxRediags int
}

func (p ModelPolicy) withDefaults() ModelPolicy {
	if p.FloorHL == 0 {
		p.FloorHL = 0.45
	}
	if p.MinSamples == 0 {
		p.MinSamples = 160
	}
	if p.RecoverAboveHL == 0 {
		p.RecoverAboveHL = 0.75
	}
	if p.FallbackAfter == 0 {
		p.FallbackAfter = 512
	}
	if p.RediagAfter == 0 {
		p.RediagAfter = 64
	}
	if p.RediagBudget == 0 {
		p.RediagBudget = 12
	}
	if p.MaxRediags == 0 {
		p.MaxRediags = 8
	}
	return p
}

func (p ModelPolicy) validate() error {
	if p.FloorHL < 0 || p.FloorHL > 1 || p.RecoverAboveHL < 0 || p.RecoverAboveHL > 1 {
		return fmt.Errorf("fleet: model accuracy bounds outside [0, 1]")
	}
	if p.RecoverAboveHL != 0 && p.FloorHL != 0 && p.RecoverAboveHL < p.FloorHL {
		return fmt.Errorf("fleet: model recovery bound %v under drift floor %v", p.RecoverAboveHL, p.FloorHL)
	}
	for _, v := range []int{p.MinSamples, p.FallbackAfter, p.RediagBudget, p.MaxRediags} {
		if v < 0 {
			return fmt.Errorf("fleet: negative model threshold")
		}
	}
	return nil
}

// Config parameterizes a fleet manager.
type Config struct {
	// Devices lists the fleet members. IDs must be unique.
	Devices []DeviceSpec

	// Shards is the worker-pool size: one goroutine per shard, each
	// owning a disjoint subset of the devices. 0 defaults to
	// min(len(Devices), GOMAXPROCS).
	Shards int

	// QueueDepth is the per-shard ingress ring capacity (rounded up to
	// a power of two); producers spin when a ring is full, so this
	// bounds how far submitters can run ahead of a shard. 0 defaults
	// to 64.
	QueueDepth int

	// PreconditionFactor is the dirtying factor applied before
	// diagnosis (the SNIA steady-state practice). 0 defaults to 1.3;
	// negative skips preconditioning entirely.
	PreconditionFactor float64

	// Diagnosis tunes the startup probes for devices without preloaded
	// Features. The zero value uses the full-strength defaults.
	Diagnosis extract.Opts

	// Retry bounds transient-error retries. The zero value takes the
	// standard defaults.
	Retry RetryPolicy

	// Health tunes the per-device health state machine and recovery
	// probes. The zero value takes the standard defaults.
	Health HealthPolicy

	// Model tunes the per-device model-health machine: drift watchdog,
	// conservative fallback, and online re-diagnosis. The zero value
	// takes the standard defaults.
	Model ModelPolicy

	// AllowEmpty accepts a configuration with no devices. A cluster
	// node starts this way — an empty manager whose members arrive
	// later through Attach — so the usual "no devices" rejection would
	// make restarted nodes unconstructable.
	AllowEmpty bool

	// Registry receives the fleet's metrics (request/error/retry
	// counters, health gauges, latency histograms), which the daemon
	// exposes in Prometheus text format. nil builds a private registry
	// — the same metrics still power the JSON snapshots.
	Registry *obs.Registry

	// Recorder receives sampled request traces and named events
	// (health transitions, calibration resets). nil defaults to the
	// allocation-free no-op recorder.
	Recorder obs.Recorder
}

func (c Config) withDefaults() Config {
	c.Retry = c.Retry.WithDefaults()
	c.Health = c.Health.withDefaults()
	c.Model = c.Model.withDefaults()
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Recorder == nil {
		c.Recorder = obs.Nop()
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards > len(c.Devices) && len(c.Devices) > 0 {
		c.Shards = len(c.Devices)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.PreconditionFactor == 0 {
		c.PreconditionFactor = 1.3
	}
	return c
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	if len(c.Devices) == 0 && !c.AllowEmpty {
		return fmt.Errorf("fleet: no devices configured")
	}
	shards := c.withDefaults().Shards
	seen := make(map[string]bool, len(c.Devices))
	for i, d := range c.Devices {
		if d.ID == "" {
			return fmt.Errorf("fleet: device %d has no ID", i)
		}
		if seen[d.ID] {
			return fmt.Errorf("fleet: duplicate device ID %q", d.ID)
		}
		seen[d.ID] = true
		if d.Config == nil {
			if _, err := ssd.Preset(d.Preset, d.Seed); err != nil {
				return fmt.Errorf("fleet: device %q: %w", d.ID, err)
			}
		} else if err := d.Config.Validate(); err != nil {
			return fmt.Errorf("fleet: device %q: %w", d.ID, err)
		}
		if d.Shard < 0 || d.Shard > shards {
			return fmt.Errorf("fleet: device %q pinned to shard %d of %d", d.ID, d.Shard, shards)
		}
		if d.Features != nil {
			if err := d.Features.Validate(); err != nil {
				return fmt.Errorf("fleet: device %q: %w", d.ID, err)
			}
		}
		if d.Faults != nil {
			if err := d.Faults.Validate(); err != nil {
				return fmt.Errorf("fleet: device %q: %w", d.ID, err)
			}
		}
	}
	if err := c.Retry.validate(); err != nil {
		return err
	}
	if err := c.Health.validate(); err != nil {
		return err
	}
	return c.Model.validate()
}

// PresetDevices builds n device specs cycling through the given preset
// names ("A".."H", "X"), with IDs like "ssd-00-A" and per-device seeds
// derived from baseSeed. It is the standard way to stand up a
// mixed-preset fleet for the daemon, examples, and benchmarks.
func PresetDevices(n int, presets []string, baseSeed uint64) []DeviceSpec {
	if len(presets) == 0 {
		presets = append([]string(nil), ssd.ExtendedPresetNames...)
	}
	out := make([]DeviceSpec, 0, n)
	for i := 0; i < n; i++ {
		p := presets[i%len(presets)]
		out = append(out, DeviceSpec{
			ID:     fmt.Sprintf("ssd-%02d-%s", i, p),
			Preset: p,
			Seed:   baseSeed + uint64(i)*0x9e3779b9,
		})
	}
	return out
}

// FastDiagnosis returns reduced-strength diagnosis options that still
// recover every structural feature of the built-in presets but probe an
// order of magnitude fewer requests. Tests, benchmarks, and quickstart
// fleets use it to keep startup short; production diagnosis should use
// the zero-value (full-strength) Opts.
func FastDiagnosis() extract.Opts {
	return extract.Opts{
		MinBit:            16,
		MaxBit:            18,
		AllocWritesPerBit: 1500,
		GCIntervals:       12,
		Thinktimes:        []time.Duration{500 * time.Microsecond},
	}
}
