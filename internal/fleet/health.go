package fleet

import (
	"encoding/json"
	"errors"
	"fmt"

	"ssdcheck/internal/blockdev"
	"ssdcheck/internal/simclock"
)

// Typed fleet errors. Per-request failures surface in Result.Err (and
// as the error return of the single-request Submit); all are
// errors.Is-compatible so callers can dispatch without string
// matching.
var (
	// ErrDeviceQuarantined rejects requests routed to a device the
	// health state machine has taken out of service.
	ErrDeviceQuarantined = errors.New("fleet: device quarantined")
	// ErrUnknownDevice rejects requests addressed to an ID the fleet
	// does not own.
	ErrUnknownDevice = errors.New("fleet: unknown device")
	// ErrManagerClosed rejects batches submitted after Close.
	ErrManagerClosed = errors.New("fleet: manager closed")
)

// Health is a fleet device's position in the resilience state
// machine:
//
//	healthy ⇄ degraded → quarantined ⇄ recovering
//	                          ↑____________|  (probe fail)
//	recovering → healthy                      (probe pass)
//
// A device degrades on consecutive errors or timeout-class latencies,
// is quarantined (taken out of routing) when they persist or on any
// fail-stop error, and returns to service only after a recovery probe
// pass.
type Health uint8

const (
	// Healthy devices serve requests normally.
	Healthy Health = iota
	// Degraded devices still serve but are accumulating errors or
	// latency anomalies; sustained trouble quarantines them, a clean
	// streak heals them.
	Degraded
	// Quarantined devices are out of routing: their requests fail
	// fast with ErrDeviceQuarantined.
	Quarantined
	// Recovering devices are mid recovery-probe; the state is
	// transient (the probe runs synchronously on the owning shard)
	// but appears in transition logs.
	Recovering
)

// String names the state for logs and wire formats.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Quarantined:
		return "quarantined"
	case Recovering:
		return "recovering"
	default:
		return fmt.Sprintf("health(%d)", uint8(h))
	}
}

// MarshalJSON renders the state as its string name.
func (h Health) MarshalJSON() ([]byte, error) {
	return []byte(`"` + h.String() + `"`), nil
}

// UnmarshalJSON parses the string names MarshalJSON emits, so API
// clients can round-trip snapshots and health reports.
func (h *Health) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "healthy":
		*h = Healthy
	case "degraded":
		*h = Degraded
	case "quarantined":
		*h = Quarantined
	case "recovering":
		*h = Recovering
	default:
		return fmt.Errorf("fleet: unknown health state %q", s)
	}
	return nil
}

// HealthTransition is one edge taken in a device's health state
// machine. Seq is the device's request sequence number (counting every
// routed request, including rejected ones) at the transition, so with
// in-order per-device submission the transition log is a deterministic
// function of the request stream and the fault schedule.
type HealthTransition struct {
	Seq   int64  `json:"seq"`
	From  Health `json:"from"`
	To    Health `json:"to"`
	Cause string `json:"cause"`
}

// HealthReport is the detailed per-device resilience view served by
// Manager.DeviceHealth and the daemon's /v1/devices/{id}/health.
type HealthReport struct {
	ID     string `json:"id"`
	Health Health `json:"health"`

	// ConsecutiveErrors and ConsecutiveTimeouts are the running
	// anomaly streaks driving degradation.
	ConsecutiveErrors   int `json:"consecutive_errors"`
	ConsecutiveTimeouts int `json:"consecutive_timeouts"`

	// RejectedSinceQuarantine counts requests bounced since the device
	// left service; it triggers the deterministic recovery probe.
	RejectedSinceQuarantine int64 `json:"rejected_since_quarantine"`

	// Probes counts recovery-probe attempts (passed or failed).
	Probes int64 `json:"probes"`

	// Transitions is the full health-transition log, oldest first.
	Transitions []HealthTransition `json:"transitions"`
}

// DeviceHealthLog pairs a device with its transition log; Manager's
// HealthLog returns one per device in configuration order so the whole
// fleet's resilience history marshals deterministically.
type DeviceHealthLog struct {
	ID          string             `json:"id"`
	Health      Health             `json:"health"`
	Transitions []HealthTransition `json:"transitions"`
}

// transition moves the device to a new health state and logs the edge.
// It runs on the owning shard goroutine with md.mu held.
func (md *managedDevice) transitionLocked(to Health, cause string) {
	if md.health == to {
		return
	}
	md.translog = append(md.translog, HealthTransition{
		Seq: md.seq, From: md.health, To: to, Cause: cause,
	})
	md.health = to
	md.stats.vals[statTransitions]++
	md.rec.Event("health_"+to.String(), md.id)
}

// noteOutcomeLocked feeds one served request's outcome (error, timeout
// or clean completion) into the state machine. Callers hold md.mu.
func (md *managedDevice) noteOutcomeLocked(err error, timedOut bool, hp HealthPolicy) {
	switch {
	case err != nil && errors.Is(err, blockdev.ErrDeviceFailed):
		md.consecErr++
		md.consecOK = 0
		md.enterQuarantineLocked("fail-stop error")
		return
	case err != nil:
		md.consecErr++
		md.consecOK = 0
	case timedOut:
		md.consecSlow++
		md.consecErr = 0
		md.consecOK = 0
	default:
		md.consecErr = 0
		md.consecSlow = 0
		md.consecOK++
	}

	switch md.health {
	case Healthy:
		switch {
		case md.consecErr >= hp.DegradeAfterErrors:
			md.transitionLocked(Degraded, "consecutive errors")
		case md.consecSlow >= hp.DegradeAfterTimeouts:
			md.transitionLocked(Degraded, "consecutive timeouts")
		}
	case Degraded:
		switch {
		case md.consecErr >= hp.QuarantineAfterErrors:
			md.enterQuarantineLocked("persistent errors")
		case md.consecSlow >= hp.QuarantineAfterTimeouts:
			md.enterQuarantineLocked("persistent timeouts")
		case md.consecOK >= hp.RecoverAfterOK:
			md.transitionLocked(Healthy, "clean streak")
		}
	}
}

// enterQuarantineLocked takes the device out of routing and resets the
// streaks so a later recovery starts clean. Callers hold md.mu.
func (md *managedDevice) enterQuarantineLocked(cause string) {
	md.transitionLocked(Quarantined, cause)
	md.consecErr, md.consecSlow, md.consecOK = 0, 0, 0
	md.rejections = 0
}

// tryRecover runs one recovery probe: quarantined → recovering, a
// cheap seeded probe pass against the device, then healthy on pass or
// back to quarantined on fail. It runs on the owning shard goroutine.
func (md *managedDevice) tryRecover(cfg Config) {
	md.mu.Lock()
	if md.health != Quarantined {
		md.mu.Unlock()
		return
	}
	md.transitionLocked(Recovering, "recovery probe")
	md.stats.vals[statProbes]++
	md.mu.Unlock()

	ok := md.runProbe(cfg)

	md.mu.Lock()
	if ok {
		md.transitionLocked(Healthy, "probe pass")
		md.consecErr, md.consecSlow, md.consecOK = 0, 0, 0
	} else {
		md.transitionLocked(Quarantined, "probe fail")
	}
	md.rejections = 0
	md.publishLocked()
	md.mu.Unlock()
}

// runProbe issues a short seeded read/write pass on the device's
// virtual clock — a miniature of the diagnosis traffic — and passes
// only if every request completes without error and under the request
// timeout.
func (md *managedDevice) runProbe(cfg Config) bool {
	hp := cfg.Health
	pages := md.dev.CapacitySectors() / blockdev.SectorsPerPage
	for i := 0; i < hp.ProbeRequests; i++ {
		op := blockdev.Read
		if i%2 == 1 {
			op = blockdev.Write
		}
		req := blockdev.Request{
			Op:      op,
			LBA:     md.rng.Int63n(pages) * blockdev.SectorsPerPage,
			Sectors: blockdev.SectorsPerPage,
		}
		done, err := md.submitChecked(req, md.now)
		if err != nil {
			return false
		}
		lat := done.Sub(md.now)
		md.now = done
		if lat >= hp.RequestTimeout {
			return false
		}
	}
	return true
}

// submitChecked routes through the cached fallible surface when the
// device has one, avoiding a per-request type assertion on the hot
// path.
func (md *managedDevice) submitChecked(req blockdev.Request, at simclock.Time) (simclock.Time, error) {
	if md.fallible != nil {
		return md.fallible.SubmitChecked(req, at)
	}
	return md.dev.Submit(req, at), nil
}
