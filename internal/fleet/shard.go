package fleet

import (
	"sync"
	"time"

	"ssdcheck/internal/blockdev"
	"ssdcheck/internal/core"
	"ssdcheck/internal/extract"
	"ssdcheck/internal/simclock"
	"ssdcheck/internal/trace"
)

// managedDevice is one fleet member: a device, its predictor, and its
// private virtual clock. All fields above mu are touched only by the
// owning shard's goroutine (plus initialization); the stats block below
// mu is shared with metrics readers.
type managedDevice struct {
	id    string
	name  string // simulator label ("SSD A", ...)
	spec  DeviceSpec
	shard int

	dev blockdev.Device
	pr  *core.Predictor
	now simclock.Time // per-device virtual clock

	mu    sync.Mutex
	stats deviceStats
	// Cached predictor state, refreshed by the shard after every
	// request so readers never touch the (non-thread-safe) predictor.
	enabled bool
	model   core.ModelState
	clock   simclock.Time
}

// init preconditions and diagnoses the device, then builds its
// predictor. It runs on the owning shard's goroutine during startup so
// fleets diagnose in parallel, one shard at a time per device.
func (md *managedDevice) init(cfg Config) error {
	if tagged, ok := md.dev.(blockdev.TaggedDevice); ok && cfg.PreconditionFactor > 0 {
		md.now = trace.Precondition(tagged, md.spec.Seed, cfg.PreconditionFactor, md.now)
	}
	feats := md.spec.Features
	if feats == nil {
		opts := cfg.Diagnosis
		opts.Seed = md.spec.Seed ^ 0xd1a6 // device-private probe stream
		var err error
		feats, md.now, err = extract.Run(md.dev, md.now, opts)
		if err != nil {
			return err
		}
	}
	md.pr = core.NewPredictor(feats, md.spec.Params)
	md.publish()
	return nil
}

// process runs one request through the predict → submit → observe
// pipeline on the device's virtual clock and records it in the stats.
func (md *managedDevice) process(req blockdev.Request) Result {
	pred := md.pr.Predict(req, md.now)
	done := md.dev.Submit(req, md.now)
	md.pr.Observe(req, md.now, done)
	lat := done.Sub(md.now)
	res := Result{
		DeviceID:    md.id,
		HL:          pred.HL,
		EET:         pred.EET,
		Latency:     lat,
		ObservedHL:  md.pr.Classify(req.Op, lat),
		CompletedAt: done,
	}
	md.now = done

	md.mu.Lock()
	md.stats.record(req, pred.HL, lat, res.ObservedHL)
	md.publishLocked()
	md.mu.Unlock()
	return res
}

func (md *managedDevice) publish() {
	md.mu.Lock()
	md.publishLocked()
	md.mu.Unlock()
}

func (md *managedDevice) publishLocked() {
	md.enabled = md.pr.Enabled()
	md.model = md.pr.State(0)
	md.clock = md.now
}

// Result is the fleet's answer for one submitted request.
type Result struct {
	// DeviceID names the device that served the request.
	DeviceID string `json:"device"`
	// HL is the prediction made before submission.
	HL bool `json:"hl"`
	// EET is the predicted latency (estimated end time).
	EET time.Duration `json:"eet_ns"`
	// Latency is the observed service time on the device's virtual
	// clock.
	Latency time.Duration `json:"latency_ns"`
	// ObservedHL classifies the observed latency against the device's
	// extracted NL/HL threshold.
	ObservedHL bool `json:"observed_hl"`
	// CompletedAt is the device's virtual clock after the request.
	CompletedAt simclock.Time `json:"completed_at_ns"`
}

// batchItem is one request routed to a shard, carrying its slot in the
// caller's result slice.
type batchItem struct {
	md  *managedDevice
	req blockdev.Request
	idx int
}

// shardBatch is the unit of work a shard receives: a slice of items to
// process in order, writing each result into its own slot of out. Slots
// are disjoint across shards, and wg publishes the writes to the
// caller.
type shardBatch struct {
	items []batchItem
	out   []Result
	wg    *sync.WaitGroup
}

// shard owns a disjoint subset of the fleet's devices and processes
// their requests sequentially on one goroutine.
type shard struct {
	id   int
	reqs chan shardBatch
	devs []*managedDevice
}

func (s *shard) run(done *sync.WaitGroup) {
	defer done.Done()
	for b := range s.reqs {
		for _, it := range b.items {
			b.out[it.idx] = it.md.process(it.req)
		}
		b.wg.Done()
	}
}
