package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ssdcheck/internal/blockdev"
	"ssdcheck/internal/core"
	"ssdcheck/internal/extract"
	"ssdcheck/internal/faults"
	"ssdcheck/internal/obs"
	"ssdcheck/internal/simclock"
	"ssdcheck/internal/trace"
)

// managedDevice is one fleet member: a device, its predictor, its
// private virtual clock, and its health state. The device, predictor,
// clock and RNG are touched only by the owning shard's goroutine (plus
// initialization); everything below mu is shared with metrics and
// health readers.
type managedDevice struct {
	id    string
	name  string // simulator label ("SSD A", ...)
	spec  DeviceSpec
	shard int

	dev      blockdev.Device
	fallible blockdev.FallibleDevice // cached checked surface, may be nil
	inj      *faults.Injector        // non-nil when spec.Faults is set
	pr       *core.Predictor
	now      simclock.Time // per-device virtual clock
	rng      *simclock.RNG // retry jitter + recovery-probe addresses

	// rec receives sampled request traces and health events; never nil
	// (defaults to obs.Nop()). healthG/clockG/modelG mirror the
	// device's state into registry gauges; rediagH times re-diagnoses.
	rec     obs.Recorder
	healthG *obs.Gauge
	clockG  *obs.Gauge
	modelG  *obs.Gauge
	rediagH *obs.Histogram

	// feats is the device's current feature baseline (seeded by init,
	// replaced on every successful re-diagnosis); rediag is the
	// in-flight staged re-diagnosis. Both are touched only by the
	// owning shard goroutine.
	feats  *extract.Features
	rediag *rediagRun

	mu    sync.Mutex
	stats deviceStats
	// Health state machine (written by the shard under mu, read by
	// snapshots and the router).
	health     Health
	seq        int64 // routed requests, including rejected ones
	consecErr  int
	consecSlow int
	consecOK   int
	rejections int64 // rejected since quarantine; triggers recovery probes
	translog   []HealthTransition
	// Model-health state machine (same locking discipline as health).
	modelHealth    ModelHealth
	driftAge       int   // served completions spent drifting
	fallbackServed int64 // conservative completions since entering fallback
	rediags        int   // completed re-diagnosis attempts
	modelLog       []ModelTransition
	// Cached predictor state, refreshed by the shard after every
	// request so readers never touch the (non-thread-safe) predictor.
	enabled  bool
	model    core.ModelState
	clock    simclock.Time
	driftRep core.DriftReport
	readRisk core.Prediction // device-level nominal-read outlook
	hlStreak int             // consecutive observed-HL/timeout completions
}

// init preconditions and diagnoses the device, then builds its
// predictor. It runs on the owning shard's goroutine during startup so
// fleets diagnose in parallel, one shard at a time per device. The
// fault injector (if any) stays disarmed until every device finishes
// init, so setup traffic is fault-free.
func (md *managedDevice) init(cfg Config) error {
	if tagged, ok := md.dev.(blockdev.TaggedDevice); ok && cfg.PreconditionFactor > 0 {
		md.now = trace.Precondition(tagged, md.spec.Seed, cfg.PreconditionFactor, md.now)
	}
	feats := md.spec.Features
	if feats == nil {
		opts := cfg.Diagnosis
		opts.Seed = md.spec.Seed ^ 0xd1a6 // device-private probe stream
		var err error
		feats, md.now, err = extract.Run(md.dev, md.now, opts)
		if err != nil {
			return err
		}
	}
	md.feats = feats
	md.pr = core.NewPredictor(feats, md.spec.Params)
	md.pr.SetRecorder(md.rec, md.id)
	md.rng = simclock.NewRNG(md.spec.Seed ^ 0x5afe) // device-private resilience stream
	md.publish()
	return nil
}

// opName renders the op for wire formats and traces.
func opName(op blockdev.Op) string {
	switch op {
	case blockdev.Read:
		return "read"
	case blockdev.Write:
		return "write"
	case blockdev.Trim:
		return "trim"
	}
	return "unknown"
}

// process runs one request through the resilience pipeline on the
// device's virtual clock: quarantine check (with deterministic
// recovery probing), predict, submit with bounded retry, deadline
// classification, observe, record. When the request is sampled, every
// stage leaves a span stamped with virtual-clock instants, so the
// recorded trace is a deterministic function of the request stream.
func (md *managedDevice) process(req blockdev.Request, cfg Config) Result {
	md.mu.Lock()
	md.seq++
	seq := md.seq
	sampled := md.rec.Sampled(md.id, seq)
	// Fallback devices serve conservative predictions; only the owning
	// shard mutates modelHealth, so this capture stays valid for the
	// whole request.
	fallback := md.modelHealth.Conservative()
	var spans []obs.Span
	span := func(name string, start, end simclock.Time) {
		if sampled {
			spans = append(spans, obs.Span{Name: name, Start: start, End: end})
		}
	}
	span("queue", md.now, md.now)
	if md.health == Quarantined {
		md.rejections++
		probeDue := cfg.Health.ProbeAfterRejections > 0 && md.rejections >= int64(cfg.Health.ProbeAfterRejections)
		md.mu.Unlock()
		if probeDue {
			md.tryRecover(cfg)
		}
		md.mu.Lock()
		if md.health == Quarantined {
			md.stats.vals[statRejected]++
			md.mu.Unlock()
			res := errResult(md.id, fmt.Errorf("device %q: %w", md.id, ErrDeviceQuarantined))
			span("route", md.now, md.now)
			md.recordTrace(req, seq, sampled, spans, core.Prediction{}, res)
			return res
		}
		// A probe pass put the device back in service in time to take
		// this very request.
		md.mu.Unlock()
	} else {
		md.mu.Unlock()
	}
	span("route", md.now, md.now)

	var pred core.Prediction
	if fallback {
		pred = md.pr.ConservativePredict(req)
	} else {
		pred = md.pr.Predict(req, md.now)
	}
	span("predict", md.now, md.now)

	// Submit with bounded retry: transient failures back off
	// exponentially (with seeded jitter) on the virtual clock and try
	// again; fail-stop errors and an exhausted budget give up.
	submitAt := md.now
	retries := 0
	var done simclock.Time
	var err error
	for {
		done, err = md.submitChecked(req, submitAt)
		if err == nil {
			span("submit", submitAt, done)
			break
		}
		span("submit", submitAt, submitAt)
		if !errors.Is(err, blockdev.ErrTransient) || retries >= cfg.Retry.MaxRetries {
			break
		}
		d := cfg.Retry.Delay(retries, md.rng)
		span("backoff", submitAt, submitAt.Add(d))
		retries++
		submitAt = submitAt.Add(d)
	}
	md.now = submitAt

	if err != nil {
		res := errResult(md.id, fmt.Errorf("device %q: %w", md.id, err))
		res.HL, res.EET, res.Retries = pred.HL, pred.EET, retries
		md.mu.Lock()
		md.stats.vals[statErrors]++
		md.stats.vals[statRetries] += int64(retries)
		md.noteOutcomeLocked(err, false, cfg.Health)
		md.publishLocked()
		md.mu.Unlock()
		md.recordTrace(req, seq, sampled, spans, pred, res)
		return res
	}

	lat := done.Sub(submitAt)
	timedOut := lat >= cfg.Health.RequestTimeout
	if !timedOut && !fallback {
		// Timeout-class completions are withheld from the model: a
		// stuck or storming device would otherwise poison the
		// calibrator it needs for recovery. Fallback-mode completions
		// are withheld too — the predictor is condemned, and feeding it
		// would skew the windows the post-swap model starts from.
		md.pr.Observe(req, submitAt, done)
		span("calibrate", done, done)
	}
	res := Result{
		DeviceID:    md.id,
		HL:          pred.HL,
		EET:         pred.EET,
		Latency:     lat,
		ObservedHL:  md.pr.Classify(req.Op, lat),
		CompletedAt: done,
		Retries:     retries,
		TimedOut:    timedOut,
		Fallback:    fallback,
	}
	md.now = done

	// Drift snapshot for the watchdog; allocation-free, taken outside
	// md.mu because the predictor is shard-owned.
	drift := md.pr.Drift()

	md.mu.Lock()
	md.stats.record(req, pred.HL, lat, res.ObservedHL)
	md.stats.vals[statRetries] += int64(retries)
	if timedOut {
		md.stats.vals[statTimeouts]++
	}
	if fallback {
		md.stats.vals[statFallback]++
		md.fallbackServed++
	}
	if res.ObservedHL || timedOut {
		md.hlStreak++
	} else {
		md.hlStreak = 0
	}
	md.noteOutcomeLocked(nil, timedOut, cfg.Health)
	md.noteModelLocked(drift, cfg.Model)
	rediagActive := md.modelHealth == ModelRediagnosing
	md.publishLocked()
	md.mu.Unlock()
	md.recordTrace(req, seq, sampled, spans, pred, res)
	if rediagActive {
		// Advance the staged re-diagnosis after the live request, so
		// probe traffic interleaves with serving without dropping or
		// reordering anything.
		md.rediagStep(cfg)
	}
	return res
}

// recordTrace assembles and stores the sampled request trace. It runs
// on the owning shard goroutine, outside md.mu.
func (md *managedDevice) recordTrace(req blockdev.Request, seq int64, sampled bool, spans []obs.Span, pred core.Prediction, res Result) {
	if !sampled {
		return
	}
	md.rec.RecordTrace(obs.RequestTrace{
		Device:      md.id,
		Seq:         seq,
		Op:          opName(req.Op),
		LBA:         req.LBA,
		Sectors:     req.Sectors,
		PredictedHL: pred.HL,
		ObservedHL:  res.ObservedHL,
		EET:         pred.EET,
		Latency:     res.Latency,
		Retries:     res.Retries,
		TimedOut:    res.TimedOut,
		Err:         res.Error,
		Spans:       spans,
	})
}

func (md *managedDevice) publish() {
	md.mu.Lock()
	md.publishLocked()
	md.flushObsLocked()
	md.mu.Unlock()
}

// publishLocked refreshes the cached predictor state readers see. It
// runs after every request, so it deliberately touches no atomics —
// registry series catch up in flushObsLocked on the read side.
func (md *managedDevice) publishLocked() {
	md.enabled = md.pr.Enabled()
	md.model = md.pr.State(0)
	md.clock = md.now
	md.driftRep = md.pr.Drift()
	md.readRisk = md.pr.DeviceReadRisk(md.now)
}

// bindGauges registers (or re-binds, after a move between managers)
// the device's state gauges and re-diagnosis histogram in reg.
func (md *managedDevice) bindGauges(reg *obs.Registry) {
	dev := obs.Label{Name: "device", Value: md.id}
	md.healthG = reg.Gauge("ssdcheck_device_health", "Health state (0=healthy 1=degraded 2=quarantined 3=recovering).", dev)
	md.clockG = reg.Gauge("ssdcheck_device_clock_ns", "Device virtual clock, nanoseconds.", dev)
	md.modelG = reg.Gauge("ssdcheck_device_model_health", "Model-health state (0=calibrated 1=drifting 2=fallback 3=rediagnosing).", dev)
	md.rediagH = reg.Histogram("ssdcheck_rediag_duration_seconds", "Re-diagnosis duration on the device's virtual clock.", dev)
}

// flushObsLocked pushes the device's plain tallies and state gauges
// into the registry. Every read path (snapshot, fleet metrics, health
// report) calls it under md.mu, so the registry is exact whenever it
// is rendered; the daemon refreshes via Manager.Metrics before
// Prometheus exposition.
func (md *managedDevice) flushObsLocked() {
	md.stats.flushLocked()
	md.healthG.Set(int64(md.health))
	md.clockG.Set(int64(md.clock))
	md.modelG.Set(int64(md.modelHealth))
}

// errResult builds a failed per-request result, mirroring the error
// onto the wire field.
func errResult(id string, err error) Result {
	return Result{DeviceID: id, Err: err, Error: err.Error()}
}

// Result is the fleet's answer for one submitted request.
type Result struct {
	// DeviceID names the device the request was addressed to.
	DeviceID string `json:"device"`
	// HL is the prediction made before submission.
	HL bool `json:"hl"`
	// EET is the predicted latency (estimated end time).
	EET time.Duration `json:"eet_ns"`
	// Latency is the observed service time on the device's virtual
	// clock.
	Latency time.Duration `json:"latency_ns"`
	// ObservedHL classifies the observed latency against the device's
	// extracted NL/HL threshold.
	ObservedHL bool `json:"observed_hl"`
	// CompletedAt is the device's virtual clock after the request.
	CompletedAt simclock.Time `json:"completed_at_ns"`
	// Retries counts transient-error retries this request consumed.
	Retries int `json:"retries,omitempty"`
	// Fallback marks a prediction served conservatively (static
	// always-NL) because the device's model health is fallback or
	// rediagnosing; schedulers should deprioritize it.
	Fallback bool `json:"fallback,omitempty"`
	// TimedOut marks a completion at or over the request deadline.
	TimedOut bool `json:"timed_out,omitempty"`
	// Err is the request's failure, nil on success. It wraps one of
	// the typed sentinels (blockdev.ErrTransient,
	// blockdev.ErrDeviceFailed, ErrDeviceQuarantined,
	// ErrUnknownDevice) for errors.Is dispatch.
	Err error `json:"-"`
	// Error is Err's message for the wire; empty on success.
	Error string `json:"error,omitempty"`
}

// Failed reports whether the request was not served.
func (r Result) Failed() bool { return r.Err != nil }

// batchItem is one request routed to a shard, carrying its slot in the
// caller's result slice.
type batchItem struct {
	md  *managedDevice
	req blockdev.Request
	idx int
}

// shardOp is the unit of work a shard receives through its ingress
// ring: a slice of items to process in order, writing each result into
// its own slot of out; or — when probe is set — a sweep that
// recovery-probes the shard's quarantined devices; or — when rediag is
// set — a synchronous forced re-diagnosis of one device, its error
// written through rediagErr; or — when attach/detach is set — a
// membership change handing device ownership to or away from this
// shard's goroutine. Result slots are disjoint across shards, and wg
// publishes the writes to the caller.
//
// Operations are pooled: the submitter takes one from Manager.opPool,
// the shard signals wg after its last touch, and the submitter recycles
// it after wg.Wait — so the steady-state round trip allocates nothing.
// ownWG and inline are the embedded storage the single-operation paths
// (Submit's fast path, probes, membership changes) use so even those
// never reach for a second object.
type shardOp struct {
	items     []batchItem
	out       []Result
	wg        *sync.WaitGroup
	enq       time.Time // ring entry instant, for the ingress wait histogram
	probe     bool
	rediag    *managedDevice
	rediagErr *error
	attach    *managedDevice
	detach    *managedDevice

	ownWG  sync.WaitGroup
	inline [1]Result
}

// reset scrubs an op before it returns to the pool: device references
// are cleared so a pooled op never pins a detached device's simulator.
func (op *shardOp) reset() {
	clear(op.items)
	op.items = op.items[:0]
	op.out = nil
	op.wg = nil
	op.enq = time.Time{}
	op.probe = false
	op.rediag, op.rediagErr = nil, nil
	op.attach, op.detach = nil, nil
	op.inline[0] = Result{}
}

// shard owns a disjoint subset of the fleet's devices and processes
// their requests sequentially on one goroutine. Work arrives through
// the lock-free ingress ring; the goroutine spins briefly when the
// ring runs dry and then parks on wake until a producer hands it the
// token (see enqueue for the producer half of the protocol).
type shard struct {
	id   int
	q    *ingressRing
	wake chan struct{} // capacity 1: at most one pending wake token
	idle atomic.Bool   // consumer parked (or about to); producers CAS it down

	// closing is set by Close after the manager stops accepting work;
	// the consumer exits once it is set and the ring is drained.
	closing atomic.Bool

	devs []*managedDevice

	// Ingress observability: queue depth gauge (refreshed by
	// Manager.Metrics) and time-in-ring histogram (observed per
	// operation at dequeue, exposed in microseconds).
	depthG *obs.Gauge
	waitH  *obs.Histogram
}

// idleSpins is how many yield-and-recheck rounds the consumer burns
// before parking. Enough to bridge a producer mid-enqueue; small
// enough that an idle fleet costs nothing measurable.
const idleSpins = 32

func (s *shard) run(done *sync.WaitGroup, cfg Config) {
	defer done.Done()
	for {
		op := s.q.pop()
		for i := 0; op == nil && i < idleSpins; i++ {
			runtime.Gosched()
			op = s.q.pop()
		}
		if op == nil {
			// Publish idleness, then recheck: a producer that pushed
			// before seeing idle=true is caught by the recheck, one
			// that pushed after will CAS the flag and send the token —
			// either way no operation is stranded in the ring.
			s.idle.Store(true)
			if op = s.q.pop(); op == nil {
				if s.closing.Load() {
					// closing is set only after every producer released
					// m.mu, so the ring can no longer grow; one final
					// drain check and the shard is done.
					if op = s.q.pop(); op == nil {
						return
					}
				} else {
					<-s.wake
					op = s.q.pop() // may be nil: a stale token is harmless
				}
			}
			s.idle.Store(false)
			if op == nil {
				continue
			}
		}
		s.exec(op, cfg)
	}
}

// exec runs one dequeued operation. wg.Done is the shard's last touch:
// it publishes the result writes and releases the op back to its
// submitter, which may recycle it immediately.
func (s *shard) exec(op *shardOp, cfg Config) {
	s.waitH.Observe(time.Since(op.enq))
	switch {
	case op.attach != nil:
		// Ownership handoff: from here on this goroutine is the only
		// one touching the device's simulator and predictor.
		s.devs = append(s.devs, op.attach)
	case op.detach != nil:
		for i, md := range s.devs {
			if md == op.detach {
				s.devs = append(s.devs[:i], s.devs[i+1:]...)
				break
			}
		}
	case op.rediag != nil:
		*op.rediagErr = op.rediag.forceRediag(cfg)
	case op.probe:
		for _, md := range s.devs {
			md.mu.Lock()
			quarantined := md.health == Quarantined
			md.mu.Unlock()
			if quarantined {
				md.tryRecover(cfg)
			}
		}
	default:
		for _, it := range op.items {
			op.out[it.idx] = it.md.process(it.req, cfg)
		}
	}
	op.wg.Done()
}
