package fleet

import (
	"testing"

	"ssdcheck/internal/blockdev"
	"ssdcheck/internal/faults"
)

// TestSteeringSnapshot: the accessor mirrors the cached per-device
// state — membership order, availability tied to quarantine, and the
// observed-HL streak opening under a latency storm.
func TestSteeringSnapshot(t *testing.T) {
	devs := []DeviceSpec{
		{ID: "dev-a", Preset: "A", Seed: 11},
		{ID: "dev-b", Preset: "A", Seed: 22, Faults: &faults.Config{Schedules: []faults.Schedule{
			{Kind: faults.LatencyStorm, At: 5, Factor: 32, Count: 200},
		}}},
		{ID: "dev-c", Preset: "A", Seed: 33, Faults: &faults.Config{Schedules: []faults.Schedule{
			{Kind: faults.FailStop, At: 1},
		}}},
	}
	m, err := New(testConfig(devs, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	all := m.SteeringAll()
	if len(all) != 3 {
		t.Fatalf("SteeringAll returned %d devices, want 3", len(all))
	}
	for i, d := range devs {
		if all[i].ID != d.ID {
			t.Errorf("snapshot %d is %q, want membership order %q", i, all[i].ID, d.ID)
		}
		if !all[i].Available {
			t.Errorf("%s unavailable before any traffic", d.ID)
		}
	}

	// Drive enough requests to fire both fault schedules.
	for i := 0; i < 40; i++ {
		batch := make([]Request, 0, len(devs))
		for _, d := range devs {
			batch = append(batch, Request{DeviceID: d.ID, Op: blockdev.Read, LBA: int64(i) * 8, Sectors: 8})
		}
		if _, err := m.SubmitBatch(batch); err != nil {
			t.Fatal(err)
		}
	}

	if s, ok := m.Steering("dev-b"); !ok || s.HLStreak == 0 {
		t.Errorf("storming device has no HL streak: %+v (ok=%v)", s, ok)
	} else if !s.Risky() {
		t.Errorf("storming device not risky: %+v", s)
	}
	if s, ok := m.Steering("dev-c"); !ok || s.Available || s.Health != Quarantined {
		t.Errorf("fail-stopped device still available: %+v (ok=%v)", s, ok)
	}
	if s, ok := m.Steering("dev-a"); !ok || !s.Available {
		t.Errorf("healthy device unavailable: %+v (ok=%v)", s, ok)
	}
	if _, ok := m.Steering("ghost"); ok {
		t.Error("unknown device returned a snapshot")
	}
}
