package fleet

import (
	"errors"
	"sync"
	"testing"

	"ssdcheck/internal/faults"
	"ssdcheck/internal/trace"
)

// TestChaosSoak drives a 4-device fleet through a storm of randomized
// fault schedules — transient showers, stuck-busy windows, latency
// storms, one fail-stop — from concurrent submitters while metrics
// and health readers poll, and asserts the resilience invariants:
// no deadlock (the test finishes), no lost requests (every routed
// request is served, failed or rejected — exactly one of the three),
// and the state machine actually moves (quarantine and recovery
// transitions observed). Run under -race in CI.
func TestChaosSoak(t *testing.T) {
	perDevice := 12500 // 50k requests fleet-wide
	if testing.Short() {
		perDevice = 1500
	}

	devs := []DeviceSpec{
		// Short stuck-busy window: quarantines on timeouts, then the
		// probes drain the window's tail and bring the device back.
		{ID: "soak-a", Preset: "A", Seed: 101, Faults: &faults.Config{Seed: 1, Schedules: []faults.Schedule{
			{Kind: faults.Transient, Prob: 0.01},
			{Kind: faults.StuckBusy, At: int64(perDevice / 5), Count: 12},
		}}},
		// Latency storm hot enough (5000 × ~100µs) to blow the 250ms
		// deadline, plus a heavier transient shower.
		{ID: "soak-d", Preset: "D", Seed: 102, Faults: &faults.Config{Seed: 2, Schedules: []faults.Schedule{
			{Kind: faults.Transient, Prob: 0.02},
			{Kind: faults.LatencyStorm, At: int64(perDevice / 3), Count: 12, Factor: 5000},
		}}},
		// Silent drift the calibrator has to live with.
		{ID: "soak-f", Preset: "F", Seed: 103, Faults: &faults.Config{Seed: 3, Schedules: []faults.Schedule{
			{Kind: faults.Drift, At: int64(perDevice / 4), Factor: 1.2},
			{Kind: faults.Transient, Prob: 0.01},
		}}},
		// Fail-stop halfway: must end quarantined, probes keep failing.
		{ID: "soak-h", Preset: "H", Seed: 104, Faults: &faults.Config{Seed: 4, Schedules: []faults.Schedule{
			{Kind: faults.FailStop, At: int64(perDevice / 2)},
		}}},
	}
	cfg := testConfig(devs, 3)
	cfg.Retry = RetryPolicy{MaxRetries: -1} // surface every error: feed the state machine
	cfg.Health = HealthPolicy{
		DegradeAfterErrors:      2,
		QuarantineAfterErrors:   6,
		DegradeAfterTimeouts:    2,
		QuarantineAfterTimeouts: 6,
		RecoverAfterOK:          16,
		ProbeAfterRejections:    64,
		ProbeRequests:           8,
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Concurrent pollers keep the snapshot paths busy for -race.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.Metrics()
			m.HealthLog()
			m.DeviceHealth("soak-a")
		}
	}()

	type tally struct{ served, failed, rejected int64 }
	tallies := make([]tally, len(devs))
	var wg sync.WaitGroup
	for di, d := range devs {
		wg.Add(1)
		go func(di int, id string, seed uint64) {
			defer wg.Done()
			reqs := trace.Generate(trace.RWMixed, 1<<20, seed, perDevice)
			const chunk = 64
			for off := 0; off < len(reqs); off += chunk {
				end := off + chunk
				if end > len(reqs) {
					end = len(reqs)
				}
				batch := make([]Request, 0, end-off)
				for _, r := range reqs[off:end] {
					batch = append(batch, Request{DeviceID: id, Op: r.Op, LBA: r.LBA, Sectors: r.Sectors})
				}
				res, err := m.SubmitBatch(batch)
				if err != nil {
					t.Errorf("%s: batch-level error: %v", id, err)
					return
				}
				for _, r := range res {
					switch {
					case r.Err == nil:
						tallies[di].served++
					case errors.Is(r.Err, ErrDeviceQuarantined):
						tallies[di].rejected++
					default:
						tallies[di].failed++
					}
				}
			}
		}(di, d.ID, 9000+uint64(di))
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	var sawQuarantine, sawRecovery bool
	for di, d := range devs {
		got := tallies[di]
		if total := got.served + got.failed + got.rejected; total != int64(perDevice) {
			t.Errorf("%s lost requests: served=%d failed=%d rejected=%d (want total %d)",
				d.ID, got.served, got.failed, got.rejected, perDevice)
		}
		snap, _ := m.Device(d.ID)
		if snap.Counters.Requests != got.served ||
			snap.Counters.Errors != got.failed ||
			snap.Counters.Rejected != got.rejected {
			t.Errorf("%s counters disagree with caller tally: %+v vs %+v", d.ID, snap.Counters, got)
		}
		hr, _ := m.DeviceHealth(d.ID)
		for _, tr := range hr.Transitions {
			if tr.To == Quarantined {
				sawQuarantine = true
			}
			if tr.From == Recovering && tr.To == Healthy {
				sawRecovery = true
			}
		}
	}
	if !sawQuarantine {
		t.Error("chaos soak never quarantined a device")
	}
	if !sawRecovery {
		t.Error("chaos soak never recovered a device")
	}

	// The fail-stop device must be dead and on the unhealthy gauge.
	if snap, _ := m.Device("soak-h"); snap.Health != Quarantined {
		t.Errorf("fail-stop device ends %v", snap.Health)
	}
	if met := m.Metrics(); met.UnhealthyDevices == 0 {
		t.Errorf("unhealthy_devices gauge is zero: %+v", met)
	}
}
