package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"ssdcheck/internal/blockdev"
	"ssdcheck/internal/extract"
	"ssdcheck/internal/ssd"
	"ssdcheck/internal/trace"
)

// testSpecs builds a small mixed-preset fleet covering single-volume,
// multi-volume, fore-buffered and SLC-cached devices.
func testSpecs() []DeviceSpec {
	return []DeviceSpec{
		{ID: "dev-a", Preset: "A", Seed: 11},
		{ID: "dev-d", Preset: "D", Seed: 22},
		{ID: "dev-f", Preset: "F", Seed: 33},
		{ID: "dev-h", Preset: "H", Seed: 44},
	}
}

func testConfig(devs []DeviceSpec, shards int) Config {
	return Config{
		Devices:            devs,
		Shards:             shards,
		PreconditionFactor: 1.2,
		Diagnosis:          FastDiagnosis(),
	}
}

// streams generates one deterministic request stream per device.
func streams(devs []DeviceSpec, n int) map[string][]blockdev.Request {
	out := make(map[string][]blockdev.Request, len(devs))
	for i, d := range devs {
		out[d.ID] = trace.Generate(trace.RWMixed, 1<<20, 1000+uint64(i), n)
	}
	return out
}

// runInterleaved submits the streams as mixed batches (one request per
// device per step) from a single goroutine, preserving per-device
// order, and returns the final per-device snapshots.
func runInterleaved(t *testing.T, cfg Config, strs map[string][]blockdev.Request, n int) []DeviceSnapshot {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for step := 0; step < n; step++ {
		batch := make([]Request, 0, len(cfg.Devices))
		for _, d := range cfg.Devices {
			r := strs[d.ID][step]
			batch = append(batch, Request{DeviceID: d.ID, Op: r.Op, LBA: r.LBA, Sectors: r.Sectors})
		}
		res, err := m.SubmitBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if r.DeviceID != batch[i].DeviceID {
				t.Fatalf("result %d for device %q, want %q", i, r.DeviceID, batch[i].DeviceID)
			}
		}
	}
	return m.Devices()
}

// marshalStats renders snapshots with the shard assignment cleared, so
// fleets with different shard counts can be compared byte for byte.
func marshalStats(t *testing.T, snaps []DeviceSnapshot) []byte {
	t.Helper()
	for i := range snaps {
		snaps[i].Shard = 0
	}
	b, err := json.MarshalIndent(snaps, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDeterminism: the same config, seeds and per-device request
// streams must yield byte-identical per-device stats — across repeated
// runs and across shard counts.
func TestDeterminism(t *testing.T) {
	const n = 2500
	devs := testSpecs()
	strs := streams(devs, n)

	var base []byte
	for _, shards := range []int{1, 1, 3} {
		got := marshalStats(t, runInterleaved(t, testConfig(devs, shards), strs, n))
		if base == nil {
			base = got
			continue
		}
		if !bytes.Equal(base, got) {
			t.Errorf("shards=%d: per-device stats diverge from baseline\nbase: %s\ngot:  %s", shards, base, got)
		}
	}
}

// TestDeterminismPinned: a device set pinned to a single shard behaves
// identically when the fleet has more shards available.
func TestDeterminismPinned(t *testing.T) {
	const n = 1200
	devs := testSpecs()
	strs := streams(devs, n)

	pin := func(shard int) []DeviceSpec {
		out := append([]DeviceSpec(nil), devs...)
		for i := range out {
			out[i].Shard = shard
		}
		return out
	}

	a := marshalStats(t, runInterleaved(t, testConfig(pin(1), 1), strs, n))
	b := marshalStats(t, runInterleaved(t, testConfig(pin(2), 4), strs, n))
	if !bytes.Equal(a, b) {
		t.Errorf("pinned device set diverges across shard counts\none: %s\ntwo: %s", a, b)
	}
}

// TestConcurrentSubmit drives every device from its own goroutine while
// metrics readers poll, then checks the aggregate counts. Run under
// -race this is the fleet's central safety test.
func TestConcurrentSubmit(t *testing.T) {
	const n = 1500
	devs := testSpecs()
	strs := streams(devs, n)
	m, err := New(testConfig(devs, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.Metrics()
			m.Devices()
			m.Device("dev-a")
		}
	}()

	var wg sync.WaitGroup
	for _, d := range devs {
		wg.Add(1)
		go func(id string, reqs []blockdev.Request) {
			defer wg.Done()
			const chunk = 64
			for off := 0; off < len(reqs); off += chunk {
				end := off + chunk
				if end > len(reqs) {
					end = len(reqs)
				}
				batch := make([]Request, 0, end-off)
				for _, r := range reqs[off:end] {
					batch = append(batch, Request{DeviceID: id, Op: r.Op, LBA: r.LBA, Sectors: r.Sectors})
				}
				if _, err := m.SubmitBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(d.ID, strs[d.ID])
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	met := m.Metrics()
	if want := int64(n * len(devs)); met.Counters.Requests != want {
		t.Errorf("fleet processed %d requests, want %d", met.Counters.Requests, want)
	}
	if met.Devices != len(devs) {
		t.Errorf("metrics report %d devices, want %d", met.Devices, len(devs))
	}
	for _, snap := range m.Devices() {
		if snap.Counters.Requests != n {
			t.Errorf("device %s processed %d requests, want %d", snap.ID, snap.Counters.Requests, n)
		}
		if snap.Latency.P50 <= 0 {
			t.Errorf("device %s has no latency percentiles", snap.ID)
		}
	}
}

// TestPreloadedFeatures: a fleet member with a persisted diagnosis
// skips probing and still predicts.
func TestPreloadedFeatures(t *testing.T) {
	cfg, err := ssd.Preset("A", 7)
	if err != nil {
		t.Fatal(err)
	}
	dev := ssd.MustNew(cfg)
	now := trace.Precondition(dev, 7, 1.2, 0)
	opts := FastDiagnosis()
	opts.Seed = 7
	feats, _, err := extract.Run(dev, now, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip through the persistence layer, as ssdcheckd does.
	var buf bytes.Buffer
	if err := feats.Save(&buf, "SSD A"); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := extract.LoadFeatures(&buf)
	if err != nil {
		t.Fatal(err)
	}

	m, err := New(Config{
		Devices:            []DeviceSpec{{ID: "pre", Preset: "A", Seed: 7, Features: loaded}},
		Shards:             1,
		PreconditionFactor: -1, // features already describe steady state
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	res, err := m.Submit("pre", blockdev.Write, 4096, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= 0 {
		t.Errorf("no latency observed: %+v", res)
	}
	snap, ok := m.Device("pre")
	if !ok || !snap.PredictorEnabled {
		t.Errorf("preloaded predictor not enabled: %+v", snap)
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	dup := Config{Devices: []DeviceSpec{{ID: "x", Preset: "A"}, {ID: "x", Preset: "B"}}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate device ID accepted")
	}
	bad := Config{Devices: []DeviceSpec{{ID: "x", Preset: "nope"}}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown preset accepted")
	}
	pin := Config{Devices: []DeviceSpec{{ID: "x", Preset: "A", Shard: 5}}, Shards: 2}
	if err := pin.Validate(); err == nil {
		t.Error("out-of-range shard pin accepted")
	}

	m, err := New(testConfig([]DeviceSpec{{ID: "only", Preset: "A", Seed: 3}}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("ghost", blockdev.Read, 0, 8); err == nil {
		t.Error("unknown device accepted")
	}
	if _, err := m.Submit("only", blockdev.Read, -8, 8); err == nil {
		t.Error("negative LBA accepted")
	}
	if _, err := m.Submit("only", blockdev.Read, 1<<20, 8); err == nil {
		t.Error("out-of-capacity LBA accepted")
	}
	if _, err := m.Submit("only", blockdev.Read, 0, -1); err == nil {
		t.Error("negative length accepted")
	}
	if _, ok := m.Device("ghost"); ok {
		t.Error("snapshot for unknown device")
	}
	m.Close()
	m.Close() // idempotent
	if _, err := m.Submit("only", blockdev.Read, 0, 8); err == nil {
		t.Error("submit after Close accepted")
	}
}

func TestPresetDevices(t *testing.T) {
	specs := PresetDevices(16, []string{"A", "D", "F"}, 42)
	if len(specs) != 16 {
		t.Fatalf("got %d specs, want 16", len(specs))
	}
	seen := map[string]bool{}
	for i, s := range specs {
		if seen[s.ID] {
			t.Errorf("duplicate ID %q", s.ID)
		}
		seen[s.ID] = true
		if want := []string{"A", "D", "F"}[i%3]; s.Preset != want {
			t.Errorf("spec %d preset %q, want %q", i, s.Preset, want)
		}
	}
	if err := (Config{Devices: specs}).Validate(); err != nil {
		t.Errorf("generated specs invalid: %v", err)
	}
	// Empty preset list falls back to the extended preset set.
	all := PresetDevices(8, nil, 1)
	if all[7].Preset != "H" {
		t.Errorf("fallback presets wrong: %+v", all[7])
	}
	_ = fmt.Sprintf("%v", all)
}
