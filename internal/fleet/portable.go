package fleet

import (
	"fmt"
	"time"

	"ssdcheck/internal/obs"
)

// PortableDevice is a fleet member in transit between managers: the
// device simulator, its predictor, virtual clock, health and model
// state machines, and cumulative stats, detached from any shard. The
// cluster layer moves these between nodes on rebalancing and failover
// — the moral equivalent of re-opening a drive's state from a shared
// store on its new host. A handle is single-use: Attach consumes it.
type PortableDevice struct {
	md *managedDevice
}

// ID returns the device's fleet-unique identifier, or "" for a spent
// handle.
func (p *PortableDevice) ID() string {
	if p == nil || p.md == nil {
		return ""
	}
	return p.md.id
}

// Snapshot returns the detached device's stats snapshot (Shard is the
// shard it last ran on).
func (p *PortableDevice) Snapshot() DeviceSnapshot {
	if p == nil || p.md == nil {
		return DeviceSnapshot{}
	}
	return p.md.snapshot()
}

// Detach removes a device from the fleet and returns it as a portable
// handle. It blocks until the owning shard has relinquished the device,
// so the caller holds the only live reference on return. The device's
// metric series are withdrawn from this manager's registry; its
// cumulative tallies, latency histogram and transition logs travel with
// the handle and republish wherever it attaches.
func (m *Manager) Detach(id string) (*PortableDevice, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrManagerClosed
	}
	md, ok := m.devs[id]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("device %q: %w", id, ErrUnknownDevice)
	}
	delete(m.devs, id)
	for i, d := range m.order {
		if d == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	op := m.getOp()
	op.detach = md
	op.wg = &op.ownWG
	op.ownWG.Add(1)
	op.enq = time.Now()
	m.shards[md.shard].enqueue(op)
	m.mu.Unlock()
	op.ownWG.Wait()
	m.putOp(op)

	m.cfg.Registry.DropSeries(obs.Label{Name: "device", Value: id})
	return &PortableDevice{md: md}, nil
}

// Attach adds a detached device to this fleet, assigning it to a shard
// round-robin. The device's series re-register in this manager's
// registry with their cumulative values (counters republish in full,
// histogram buckets carry over), and this manager's policies govern it
// from here on. The handle is spent afterwards.
func (m *Manager) Attach(pd *PortableDevice) error {
	if pd == nil || pd.md == nil {
		return fmt.Errorf("fleet: attach of nil or spent device handle")
	}
	md := pd.md
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrManagerClosed
	}
	if _, dup := m.devs[md.id]; dup {
		m.mu.Unlock()
		return fmt.Errorf("fleet: attach: duplicate device ID %q", md.id)
	}
	sh := m.attachAuto % len(m.shards)
	m.attachAuto++
	md.rebind(m.cfg, sh)
	m.devs[md.id] = md
	m.order = append(m.order, md.id)
	op := m.getOp()
	op.attach = md
	op.wg = &op.ownWG
	op.ownWG.Add(1)
	op.enq = time.Now()
	m.shards[sh].enqueue(op)
	m.mu.Unlock()
	op.ownWG.Wait()
	m.putOp(op)
	pd.md = nil
	return nil
}

// rebind points a quiescent (detached) device at its new manager's
// observability and shard. Counter tallies keep their values and flush
// from zero, so the new registry's series land on the cumulative
// counts; histogram observations are carried over bucket-wise.
func (md *managedDevice) rebind(cfg Config, shard int) {
	md.shard = shard
	md.rec = cfg.Recorder
	md.pr.SetRecorder(cfg.Recorder, md.id)

	md.mu.Lock()
	oldStats := md.stats
	oldRediagH := md.rediagH
	md.stats = newDeviceStats(cfg.Registry, md.id)
	md.stats.vals = oldStats.vals
	md.stats.lat.AddSnapshot(oldStats.lat.Snapshot())
	md.bindGauges(cfg.Registry)
	md.rediagH.AddSnapshot(oldRediagH.Snapshot())
	md.flushObsLocked()
	md.mu.Unlock()
}
