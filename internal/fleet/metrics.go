package fleet

import (
	"time"

	"ssdcheck/internal/blockdev"
	"ssdcheck/internal/core"
	"ssdcheck/internal/obs"
	"ssdcheck/internal/simclock"
)

// statKind indexes one per-device tally in deviceStats.
type statKind int

const (
	statReads statKind = iota
	statWrites
	statTrims
	statPredictedHL // requests flagged HL before submission
	statObservedHL  // requests measured HL
	statHLHits      // observed-HL requests that were predicted HL
	statNLHits      // observed-NL requests that were predicted NL
	statBytes       // payload bytes moved

	// Resilience tallies. reads+writes+trims counts only served
	// completions; errors and rejected cover the other ways a routed
	// request ends.
	statErrors      // exhausted-retry and fail-stop failures
	statRejected    // bounced off a quarantined device
	statRetries     // transient-error retries consumed
	statTimeouts    // served completions at/over the request deadline
	statProbes      // recovery-probe attempts
	statTransitions // health state-machine edges taken

	// Model-health tallies.
	statFallback         // completions served with conservative predictions
	statRediags          // completed re-diagnosis attempts
	statModelTransitions // model-health state-machine edges taken

	numStats
)

// deviceStats is the streaming per-device tally. The counters are kept
// two ways: plain shard-local values written under the managedDevice
// mutex — so the request hot path pays no atomic operations for them —
// and registry series the tallies are flushed into whenever the device
// is read (snapshot, fleet metrics, health report). The daemon's
// Prometheus handler refreshes via Manager.Metrics before rendering,
// so exposition always sees exact values. The latency histogram is the
// exception: it records straight into the registry (two atomic adds
// per request) so quantile snapshots and exposition share one set of
// buckets.
type deviceStats struct {
	vals    [numStats]int64 // plain tallies, owned by the shard under md.mu
	flushed [numStats]int64 // portion already pushed into series
	series  [numStats]*obs.Counter

	// lat holds every served completion's latency; percentiles are
	// computed from its buckets, identically at any shard count.
	lat *obs.Histogram
}

// newDeviceStats registers (or re-binds) the device's metric series.
func newDeviceStats(reg *obs.Registry, id string) deviceStats {
	dev := obs.Label{Name: "device", Value: id}
	op := func(o string) *obs.Counter {
		return reg.Counter("ssdcheck_requests_total",
			"Served requests by device and operation.", dev, obs.Label{Name: "op", Value: o})
	}
	c := func(name, help string) *obs.Counter { return reg.Counter(name, help, dev) }
	d := deviceStats{
		lat: reg.Histogram("ssdcheck_request_latency_seconds",
			"Served request latency on the device's virtual clock.", dev),
	}
	d.series[statReads] = op("read")
	d.series[statWrites] = op("write")
	d.series[statTrims] = op("trim")
	d.series[statPredictedHL] = c("ssdcheck_predicted_hl_total", "Requests predicted high-latency before submission.")
	d.series[statObservedHL] = c("ssdcheck_observed_hl_total", "Requests measured high-latency.")
	d.series[statHLHits] = c("ssdcheck_hl_hits_total", "Observed-HL requests that were predicted HL.")
	d.series[statNLHits] = c("ssdcheck_nl_hits_total", "Observed-NL requests that were predicted NL.")
	d.series[statBytes] = c("ssdcheck_bytes_total", "Payload bytes moved.")
	d.series[statErrors] = c("ssdcheck_request_errors_total", "Requests failed after exhausting retries, or fail-stop.")
	d.series[statRejected] = c("ssdcheck_requests_rejected_total", "Requests bounced off a quarantined device.")
	d.series[statRetries] = c("ssdcheck_request_retries_total", "Transient-error retries consumed.")
	d.series[statTimeouts] = c("ssdcheck_request_timeouts_total", "Served completions at or over the request deadline.")
	d.series[statProbes] = c("ssdcheck_recovery_probes_total", "Recovery-probe attempts.")
	d.series[statTransitions] = c("ssdcheck_health_transitions_total", "Health state-machine edges taken.")
	d.series[statFallback] = c("ssdcheck_fallback_served_total", "Completions served with conservative fallback predictions.")
	d.series[statRediags] = c("ssdcheck_rediags_total", "Completed re-diagnosis attempts.")
	d.series[statModelTransitions] = c("ssdcheck_model_transitions_total", "Model-health state-machine edges taken.")
	return d
}

func (d *deviceStats) record(req blockdev.Request, predHL bool, lat time.Duration, obsHL bool) {
	switch req.Op {
	case blockdev.Read:
		d.vals[statReads]++
	case blockdev.Write:
		d.vals[statWrites]++
	case blockdev.Trim:
		d.vals[statTrims]++
	}
	if predHL {
		d.vals[statPredictedHL]++
	}
	if obsHL {
		d.vals[statObservedHL]++
		if predHL {
			d.vals[statHLHits]++
		}
	} else if !predHL {
		d.vals[statNLHits]++
	}
	d.vals[statBytes] += int64(req.Bytes())
	d.lat.Observe(lat)
}

// flushLocked publishes the plain tallies into their registry series.
// Counters are monotone, so pushing the delta since the last flush
// lands the series exactly on the tally. Callers hold md.mu.
func (d *deviceStats) flushLocked() {
	for k := range d.vals {
		if delta := d.vals[k] - d.flushed[k]; delta > 0 {
			d.series[k].Add(delta)
			d.flushed[k] = d.vals[k]
		}
	}
}

// requests returns the served-completion count (every record() call).
func (d *deviceStats) requests() int64 {
	return d.vals[statReads] + d.vals[statWrites] + d.vals[statTrims]
}

// LatencySummary is a percentile digest computed from the latency
// histogram's buckets — it covers every served request, not a window,
// and is identical across shard counts.
type LatencySummary struct {
	Samples int           `json:"samples"`
	Mean    time.Duration `json:"mean_ns"`
	P50     time.Duration `json:"p50_ns"`
	P90     time.Duration `json:"p90_ns"`
	P99     time.Duration `json:"p99_ns"`
	P999    time.Duration `json:"p999_ns"`
	Max     time.Duration `json:"max_ns"`
}

// Summarize digests a latency histogram snapshot into the standard
// percentile summary. Exported so the cluster layer can summarize a
// cross-node merged snapshot with the same definition the fleet uses.
func Summarize(s obs.HistogramSnapshot) LatencySummary {
	return LatencySummary{
		Samples: int(s.Count),
		Mean:    s.Mean(),
		P50:     s.Quantile(0.50),
		P90:     s.Quantile(0.90),
		P99:     s.Quantile(0.99),
		P999:    s.Quantile(0.999),
		Max:     s.MaxValue(),
	}
}

// Counters is the exact-count half of a stats snapshot (these cover
// every request ever processed).
type Counters struct {
	Requests    int64 `json:"requests"`
	Reads       int64 `json:"reads"`
	Writes      int64 `json:"writes"`
	Trims       int64 `json:"trims"`
	PredictedHL int64 `json:"predicted_hl"`
	ObservedHL  int64 `json:"observed_hl"`
	HLHits      int64 `json:"hl_hits"`
	NLHits      int64 `json:"nl_hits"`
	Bytes       int64 `json:"bytes"`

	// Resilience counters: Requests counts served completions;
	// Errors and Rejected are the failure outcomes, so
	// Requests+Errors+Rejected is every request ever routed here.
	Errors   int64 `json:"errors"`
	Rejected int64 `json:"rejected"`
	Retries  int64 `json:"retries"`
	Timeouts int64 `json:"timeouts"`
	Probes   int64 `json:"probes"`

	// Model-health counters: Fallback counts completions served with
	// conservative predictions, Rediags completed re-diagnosis
	// attempts.
	Fallback int64 `json:"fallback"`
	Rediags  int64 `json:"rediags"`
}

// Add returns the element-wise sum — how per-device counters roll up
// into fleet totals, and fleet totals into cluster totals.
func (c Counters) Add(o Counters) Counters {
	c.Requests += o.Requests
	c.Reads += o.Reads
	c.Writes += o.Writes
	c.Trims += o.Trims
	c.PredictedHL += o.PredictedHL
	c.ObservedHL += o.ObservedHL
	c.HLHits += o.HLHits
	c.NLHits += o.NLHits
	c.Bytes += o.Bytes
	c.Errors += o.Errors
	c.Rejected += o.Rejected
	c.Retries += o.Retries
	c.Timeouts += o.Timeouts
	c.Probes += o.Probes
	c.Fallback += o.Fallback
	c.Rediags += o.Rediags
	return c
}

// HLRate returns the observed high-latency fraction.
func (c Counters) HLRate() float64 {
	if c.Requests == 0 {
		return 0
	}
	return float64(c.ObservedHL) / float64(c.Requests)
}

// HLAccuracy returns the share of observed-HL requests that were
// predicted HL (1 when none were observed, matching the predictor's own
// convention).
func (c Counters) HLAccuracy() float64 {
	if c.ObservedHL == 0 {
		return 1
	}
	return float64(c.HLHits) / float64(c.ObservedHL)
}

// NLAccuracy returns the share of observed-NL requests predicted NL.
func (c Counters) NLAccuracy() float64 {
	nl := c.Requests - c.ObservedHL
	if nl == 0 {
		return 1
	}
	return float64(c.NLHits) / float64(nl)
}

// DeviceSnapshot is a point-in-time view of one fleet member.
type DeviceSnapshot struct {
	ID     string `json:"id"`
	Device string `json:"device"` // simulator label
	Preset string `json:"preset,omitempty"`
	Shard  int    `json:"shard"`

	// Health is the device's position in the resilience state machine.
	Health Health `json:"health"`

	// ModelHealth is the device's position in the model-health state
	// machine (see ModelHealth).
	ModelHealth ModelHealth `json:"model_health"`

	Counters   Counters       `json:"counters"`
	HLRate     float64        `json:"hl_rate"`
	HLAccuracy float64        `json:"hl_accuracy"`
	NLAccuracy float64        `json:"nl_accuracy"`
	Latency    LatencySummary `json:"latency"`

	// PredictorEnabled mirrors the calibrator's harmless-disable state.
	PredictorEnabled bool `json:"predictor_enabled"`
	// Model is the predictor's volume-0 model state (buffer counter,
	// EBT, GC interval counter).
	Model core.ModelState `json:"model"`
	// Clock is the device's virtual time.
	Clock simclock.Time `json:"clock_ns"`
}

// Metrics is the fleet-wide aggregate view. The accuracy figures
// cover only devices currently in service; quarantined devices are
// tallied in the UnhealthyDevices gauge instead.
type Metrics struct {
	Devices          int      `json:"devices"`
	Shards           int      `json:"shards"`
	UnhealthyDevices int      `json:"unhealthy_devices"`
	FallbackModels   int      `json:"fallback_models"`
	Counters         Counters `json:"counters"`
	// AccuracyCounters is the subset of Counters behind the accuracy
	// figures — in-service, non-fallback devices only. Exported so the
	// cluster layer can sum it across nodes and recompute merged
	// accuracy exactly.
	AccuracyCounters Counters       `json:"accuracy_counters"`
	HLRate           float64        `json:"hl_rate"`
	HLAccuracy       float64        `json:"hl_accuracy"`
	NLAccuracy       float64        `json:"nl_accuracy"`
	Latency          LatencySummary `json:"latency"` // merged across devices
}

// snapshot captures the device's current stats under its mutex.
func (md *managedDevice) snapshot() DeviceSnapshot {
	md.mu.Lock()
	defer md.mu.Unlock()
	md.flushObsLocked()
	c := md.counters()
	return DeviceSnapshot{
		ID:               md.id,
		Device:           md.name,
		Preset:           md.spec.Preset,
		Shard:            md.shard,
		Health:           md.health,
		ModelHealth:      md.modelHealth,
		Counters:         c,
		HLRate:           c.HLRate(),
		HLAccuracy:       c.HLAccuracy(),
		NLAccuracy:       c.NLAccuracy(),
		Latency:          Summarize(md.stats.lat.Snapshot()),
		PredictorEnabled: md.enabled,
		Model:            md.model,
		Clock:            md.clock,
	}
}

// counters converts the internal tally to the exported form.
func (md *managedDevice) counters() Counters {
	d := &md.stats
	return Counters{
		Requests:    d.requests(),
		Reads:       d.vals[statReads],
		Writes:      d.vals[statWrites],
		Trims:       d.vals[statTrims],
		PredictedHL: d.vals[statPredictedHL],
		ObservedHL:  d.vals[statObservedHL],
		HLHits:      d.vals[statHLHits],
		NLHits:      d.vals[statNLHits],
		Bytes:       d.vals[statBytes],
		Errors:      d.vals[statErrors],
		Rejected:    d.vals[statRejected],
		Retries:     d.vals[statRetries],
		Timeouts:    d.vals[statTimeouts],
		Probes:      d.vals[statProbes],
		Fallback:    d.vals[statFallback],
		Rediags:     d.vals[statRediags],
	}
}
