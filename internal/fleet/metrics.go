package fleet

import (
	"time"

	"ssdcheck/internal/blockdev"
	"ssdcheck/internal/core"
	"ssdcheck/internal/simclock"
	"ssdcheck/internal/stats"
)

// latencyWindow bounds the per-device latency reservoir so a
// long-running fleet does not grow without bound: percentiles are
// computed over the most recent latencyWindow observations.
const latencyWindow = 1 << 15

// deviceStats is the streaming per-device tally. It is written by the
// owning shard and read by metrics snapshots, always under the
// managedDevice mutex.
type deviceStats struct {
	requests, reads, writes, trims int64

	predictedHL int64 // requests flagged HL before submission
	observedHL  int64 // requests measured HL
	hlHits      int64 // observed-HL requests that were predicted HL
	nlHits      int64 // observed-NL requests that were predicted NL

	bytes int64 // payload bytes moved

	// Resilience tallies. requests counts only served completions;
	// errors and rejected cover the other ways a routed request ends.
	errors   int64 // exhausted-retry and fail-stop failures
	rejected int64 // bounced off a quarantined device
	retries  int64 // transient-error retries consumed
	timeouts int64 // served completions at/over the request deadline
	probes   int64 // recovery-probe attempts

	// lats is a ring of the last latencyWindow latencies (ns).
	lats []float64
	next int
	full bool
}

func (d *deviceStats) record(req blockdev.Request, predHL bool, lat time.Duration, obsHL bool) {
	d.requests++
	switch req.Op {
	case blockdev.Read:
		d.reads++
	case blockdev.Write:
		d.writes++
	case blockdev.Trim:
		d.trims++
	}
	if predHL {
		d.predictedHL++
	}
	if obsHL {
		d.observedHL++
		if predHL {
			d.hlHits++
		}
	} else if !predHL {
		d.nlHits++
	}
	d.bytes += int64(req.Bytes())

	if d.lats == nil {
		d.lats = make([]float64, 0, 1024)
	}
	if len(d.lats) < latencyWindow {
		d.lats = append(d.lats, float64(lat))
	} else {
		d.lats[d.next] = float64(lat)
		d.next++
		if d.next == latencyWindow {
			d.next = 0
			d.full = true
		}
	}
}

// sample copies the latency window into a stats.Sample for
// order-statistic queries.
func (d *deviceStats) sample() *stats.Sample {
	var s stats.Sample
	for _, v := range d.lats {
		s.Add(v)
	}
	return &s
}

// LatencySummary is a percentile digest over a latency window.
type LatencySummary struct {
	Samples int           `json:"samples"`
	Mean    time.Duration `json:"mean_ns"`
	P50     time.Duration `json:"p50_ns"`
	P99     time.Duration `json:"p99_ns"`
	P999    time.Duration `json:"p999_ns"`
	Max     time.Duration `json:"max_ns"`
}

func summarize(s *stats.Sample) LatencySummary {
	return LatencySummary{
		Samples: s.Len(),
		Mean:    time.Duration(s.Mean()),
		P50:     time.Duration(s.Percentile(50)),
		P99:     time.Duration(s.Percentile(99)),
		P999:    time.Duration(s.Percentile(99.9)),
		Max:     time.Duration(s.Max()),
	}
}

// Counters is the exact-count half of a stats snapshot (unlike the
// latency percentiles, these cover every request ever processed).
type Counters struct {
	Requests    int64 `json:"requests"`
	Reads       int64 `json:"reads"`
	Writes      int64 `json:"writes"`
	Trims       int64 `json:"trims"`
	PredictedHL int64 `json:"predicted_hl"`
	ObservedHL  int64 `json:"observed_hl"`
	HLHits      int64 `json:"hl_hits"`
	NLHits      int64 `json:"nl_hits"`
	Bytes       int64 `json:"bytes"`

	// Resilience counters: Requests counts served completions;
	// Errors and Rejected are the failure outcomes, so
	// Requests+Errors+Rejected is every request ever routed here.
	Errors   int64 `json:"errors"`
	Rejected int64 `json:"rejected"`
	Retries  int64 `json:"retries"`
	Timeouts int64 `json:"timeouts"`
	Probes   int64 `json:"probes"`
}

func (c Counters) add(o Counters) Counters {
	c.Requests += o.Requests
	c.Reads += o.Reads
	c.Writes += o.Writes
	c.Trims += o.Trims
	c.PredictedHL += o.PredictedHL
	c.ObservedHL += o.ObservedHL
	c.HLHits += o.HLHits
	c.NLHits += o.NLHits
	c.Bytes += o.Bytes
	c.Errors += o.Errors
	c.Rejected += o.Rejected
	c.Retries += o.Retries
	c.Timeouts += o.Timeouts
	c.Probes += o.Probes
	return c
}

// HLRate returns the observed high-latency fraction.
func (c Counters) HLRate() float64 {
	if c.Requests == 0 {
		return 0
	}
	return float64(c.ObservedHL) / float64(c.Requests)
}

// HLAccuracy returns the share of observed-HL requests that were
// predicted HL (1 when none were observed, matching the predictor's own
// convention).
func (c Counters) HLAccuracy() float64 {
	if c.ObservedHL == 0 {
		return 1
	}
	return float64(c.HLHits) / float64(c.ObservedHL)
}

// NLAccuracy returns the share of observed-NL requests predicted NL.
func (c Counters) NLAccuracy() float64 {
	nl := c.Requests - c.ObservedHL
	if nl == 0 {
		return 1
	}
	return float64(c.NLHits) / float64(nl)
}

// DeviceSnapshot is a point-in-time view of one fleet member.
type DeviceSnapshot struct {
	ID     string `json:"id"`
	Device string `json:"device"` // simulator label
	Preset string `json:"preset,omitempty"`
	Shard  int    `json:"shard"`

	// Health is the device's position in the resilience state machine.
	Health Health `json:"health"`

	Counters   Counters       `json:"counters"`
	HLRate     float64        `json:"hl_rate"`
	HLAccuracy float64        `json:"hl_accuracy"`
	NLAccuracy float64        `json:"nl_accuracy"`
	Latency    LatencySummary `json:"latency"`

	// PredictorEnabled mirrors the calibrator's harmless-disable state.
	PredictorEnabled bool `json:"predictor_enabled"`
	// Model is the predictor's volume-0 model state (buffer counter,
	// EBT, GC interval counter).
	Model core.ModelState `json:"model"`
	// Clock is the device's virtual time.
	Clock simclock.Time `json:"clock_ns"`
}

// Metrics is the fleet-wide aggregate view. The accuracy figures
// cover only devices currently in service; quarantined devices are
// tallied in the UnhealthyDevices gauge instead.
type Metrics struct {
	Devices          int            `json:"devices"`
	Shards           int            `json:"shards"`
	UnhealthyDevices int            `json:"unhealthy_devices"`
	Counters         Counters       `json:"counters"`
	HLRate           float64        `json:"hl_rate"`
	HLAccuracy       float64        `json:"hl_accuracy"`
	NLAccuracy       float64        `json:"nl_accuracy"`
	Latency          LatencySummary `json:"latency"` // merged across devices
}

// snapshot captures the device's current stats under its mutex.
func (md *managedDevice) snapshot() DeviceSnapshot {
	md.mu.Lock()
	defer md.mu.Unlock()
	s := md.stats.sample()
	return DeviceSnapshot{
		ID:               md.id,
		Device:           md.name,
		Preset:           md.spec.Preset,
		Shard:            md.shard,
		Health:           md.health,
		Counters:         md.counters(),
		HLRate:           md.counters().HLRate(),
		HLAccuracy:       md.counters().HLAccuracy(),
		NLAccuracy:       md.counters().NLAccuracy(),
		Latency:          summarize(s),
		PredictorEnabled: md.enabled,
		Model:            md.model,
		Clock:            md.clock,
	}
}

// counters converts the internal tally to the exported form. Callers
// hold md.mu.
func (md *managedDevice) counters() Counters {
	d := &md.stats
	return Counters{
		Requests:    d.requests,
		Reads:       d.reads,
		Writes:      d.writes,
		Trims:       d.trims,
		PredictedHL: d.predictedHL,
		ObservedHL:  d.observedHL,
		HLHits:      d.hlHits,
		NLHits:      d.nlHits,
		Bytes:       d.bytes,
		Errors:      d.errors,
		Rejected:    d.rejected,
		Retries:     d.retries,
		Timeouts:    d.timeouts,
		Probes:      d.probes,
	}
}
