package fleet

import (
	"fmt"
	"sync"

	"ssdcheck/internal/ssd"
	"ssdcheck/internal/stats"
)

// Manager owns a fleet of device+predictor pairs sharded across a
// bounded worker pool. Construct one with New; submit work with Submit
// and SubmitBatch; read per-device and fleet-wide stats at any time
// with Device, Devices, and Metrics; stop it with Close.
//
// Manager is safe for concurrent use. The devices and predictors it
// owns are not — that is the point: each lives on exactly one shard
// goroutine, so the sequential single-device code runs unchanged and
// unlocked.
type Manager struct {
	cfg    Config
	shards []*shard
	devs   map[string]*managedDevice
	order  []string // device IDs in configuration order

	runWG sync.WaitGroup

	mu     sync.RWMutex // guards closed vs. in-flight channel sends
	closed bool
}

// New builds the fleet: it constructs every device, preconditions and
// diagnoses the ones without preloaded features (in parallel, one
// worker per shard), constructs the predictors, and starts the shard
// goroutines. On error everything already started is torn down.
func New(cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	m := &Manager{cfg: cfg, devs: make(map[string]*managedDevice, len(cfg.Devices))}
	for i := 0; i < cfg.Shards; i++ {
		m.shards = append(m.shards, &shard{id: i, reqs: make(chan shardBatch, cfg.QueueDepth)})
	}

	auto := 0
	for _, spec := range cfg.Devices {
		dcfg := ssd.Config{}
		if spec.Config != nil {
			dcfg = *spec.Config
		} else {
			var err error
			dcfg, err = ssd.Preset(spec.Preset, spec.Seed)
			if err != nil {
				return nil, fmt.Errorf("fleet: device %q: %w", spec.ID, err)
			}
		}
		dev, err := ssd.New(dcfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: device %q: %w", spec.ID, err)
		}
		sh := spec.Shard - 1
		if spec.Shard == 0 {
			sh = auto % cfg.Shards
			auto++
		}
		md := &managedDevice{id: spec.ID, name: dev.Name(), spec: spec, shard: sh, dev: dev}
		m.devs[spec.ID] = md
		m.order = append(m.order, spec.ID)
		m.shards[sh].devs = append(m.shards[sh].devs, md)
	}

	// Startup diagnosis runs with shard-level parallelism: each shard's
	// devices initialize sequentially on one worker, so a per-device
	// init is as deterministic as it is in the single-device pipeline.
	errs := make([]error, cfg.Shards)
	var initWG sync.WaitGroup
	for i, sh := range m.shards {
		initWG.Add(1)
		go func(i int, sh *shard) {
			defer initWG.Done()
			for _, md := range sh.devs {
				if err := md.init(cfg); err != nil {
					errs[i] = fmt.Errorf("fleet: device %q: diagnosis: %w", md.id, err)
					return
				}
			}
		}(i, sh)
	}
	initWG.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	m.runWG.Add(cfg.Shards)
	for _, sh := range m.shards {
		go sh.run(&m.runWG)
	}
	return m, nil
}

// Close stops accepting new work, lets every shard drain its queue, and
// waits for the shard goroutines to exit. It is idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for _, sh := range m.shards {
		close(sh.reqs)
	}
	m.mu.Unlock()
	m.runWG.Wait()
}

// Shards returns the worker-pool size.
func (m *Manager) Shards() int { return m.cfg.Shards }

// DeviceIDs returns the fleet's device IDs in configuration order.
func (m *Manager) DeviceIDs() []string {
	return append([]string(nil), m.order...)
}

// Device returns a stats snapshot of one device.
func (m *Manager) Device(id string) (DeviceSnapshot, bool) {
	md, ok := m.devs[id]
	if !ok {
		return DeviceSnapshot{}, false
	}
	return md.snapshot(), true
}

// Devices returns stats snapshots of every device in configuration
// order.
func (m *Manager) Devices() []DeviceSnapshot {
	out := make([]DeviceSnapshot, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.devs[id].snapshot())
	}
	return out
}

// Metrics returns the fleet-wide aggregate: summed counters and latency
// percentiles merged across every device's window.
func (m *Manager) Metrics() Metrics {
	var c Counters
	var merged stats.Sample
	for _, id := range m.order {
		md := m.devs[id]
		md.mu.Lock()
		c = c.add(md.counters())
		for _, v := range md.stats.lats {
			merged.Add(v)
		}
		md.mu.Unlock()
	}
	return Metrics{
		Devices:    len(m.order),
		Shards:     m.cfg.Shards,
		Counters:   c,
		HLRate:     c.HLRate(),
		HLAccuracy: c.HLAccuracy(),
		NLAccuracy: c.NLAccuracy(),
		Latency:    summarize(&merged),
	}
}
