package fleet

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"ssdcheck/internal/faults"
	"ssdcheck/internal/obs"
	"ssdcheck/internal/ssd"
)

// Manager owns a fleet of device+predictor pairs sharded across a
// bounded worker pool. Construct one with New; submit work with Submit
// and SubmitBatch; read per-device and fleet-wide stats at any time
// with Device, Devices, Metrics, DeviceHealth and HealthLog; stop it
// with Close.
//
// Manager is safe for concurrent use. The devices and predictors it
// owns are not — that is the point: each lives on exactly one shard
// goroutine, so the sequential single-device code runs unchanged and
// unlocked.
type Manager struct {
	cfg    Config
	shards []*shard
	devs   map[string]*managedDevice
	order  []string // device IDs in configuration order

	runWG sync.WaitGroup

	// Background recovery prober (Health.ProbeInterval > 0 only).
	proberWG   sync.WaitGroup
	stopProber chan struct{}

	closeOnce sync.Once
	// mu guards closed vs. in-flight ring enqueues, and — since devices
	// can Attach and Detach at runtime — the devs map and order slice.
	// Lock order is m.mu before md.mu.
	mu     sync.RWMutex
	closed bool

	// opPool and dispatchPool recycle the ingress bookkeeping (per-shard
	// operations, per-batch fan-out tables) so the submit→result round
	// trip allocates nothing in steady state.
	opPool       sync.Pool
	dispatchPool sync.Pool

	// attachAuto round-robins runtime-attached devices across shards,
	// mirroring what New does for spec.Shard == 0.
	attachAuto int

	// Fleet-level registry gauges, refreshed by Metrics().
	gDevices, gShards, gUnhealthy, gFallback *obs.Gauge
}

// New builds the fleet: it constructs every device (wrapping it in a
// fault injector when the spec asks for one), preconditions and
// diagnoses the ones without preloaded features (in parallel, one
// worker per shard), constructs the predictors, arms the injectors,
// and starts the shard goroutines plus the background recovery prober
// if configured. On error everything already started is torn down.
func New(cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	m := &Manager{
		cfg:        cfg,
		devs:       make(map[string]*managedDevice, len(cfg.Devices)),
		stopProber: make(chan struct{}),
		gDevices:   cfg.Registry.Gauge("ssdcheck_fleet_devices", "Configured fleet size."),
		gShards:    cfg.Registry.Gauge("ssdcheck_fleet_shards", "Worker-pool size."),
		gUnhealthy: cfg.Registry.Gauge("ssdcheck_fleet_unhealthy_devices", "Devices currently quarantined or recovering."),
		gFallback:  cfg.Registry.Gauge("ssdcheck_fleet_fallback_models", "Devices currently serving conservative fallback predictions."),
	}
	m.opPool.New = func() any { return &shardOp{} }
	m.dispatchPool.New = func() any { return &dispatch{} }
	for i := 0; i < cfg.Shards; i++ {
		lbl := obs.Label{Name: "shard", Value: strconv.Itoa(i)}
		m.shards = append(m.shards, &shard{
			id:   i,
			q:    newIngressRing(cfg.QueueDepth),
			wake: make(chan struct{}, 1),
			depthG: cfg.Registry.Gauge("fleet_ingress_queue_depth",
				"Operations queued in the shard's ingress ring.", lbl),
			waitH: cfg.Registry.HistogramScaled("fleet_ingress_wait_us",
				"Time operations spend queued in the shard's ingress ring, in microseconds.", 1e3, lbl),
		})
	}

	auto := 0
	for _, spec := range cfg.Devices {
		dcfg := ssd.Config{}
		if spec.Config != nil {
			dcfg = *spec.Config
		} else {
			var err error
			dcfg, err = ssd.Preset(spec.Preset, spec.Seed)
			if err != nil {
				return nil, fmt.Errorf("fleet: device %q: %w", spec.ID, err)
			}
		}
		dev, err := ssd.New(dcfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: device %q: %w", spec.ID, err)
		}
		sh := spec.Shard - 1
		if spec.Shard == 0 {
			sh = auto % cfg.Shards
			auto++
		}
		md := &managedDevice{
			id: spec.ID, name: dev.Name(), spec: spec, shard: sh, dev: dev,
			rec:   cfg.Recorder,
			stats: newDeviceStats(cfg.Registry, spec.ID),
		}
		md.bindGauges(cfg.Registry)
		if spec.Faults != nil {
			inj, err := faults.New(dev, *spec.Faults)
			if err != nil {
				return nil, fmt.Errorf("fleet: device %q: %w", spec.ID, err)
			}
			inj.SetArmed(false) // setup traffic stays fault-free
			md.inj = inj
			md.dev = inj
			md.fallible = inj
		}
		m.devs[spec.ID] = md
		m.order = append(m.order, spec.ID)
		m.shards[sh].devs = append(m.shards[sh].devs, md)
	}

	// Startup diagnosis runs with shard-level parallelism: each shard's
	// devices initialize sequentially on one worker, so a per-device
	// init is as deterministic as it is in the single-device pipeline.
	errs := make([]error, cfg.Shards)
	var initWG sync.WaitGroup
	for i, sh := range m.shards {
		initWG.Add(1)
		go func(i int, sh *shard) {
			defer initWG.Done()
			for _, md := range sh.devs {
				if err := md.init(cfg); err != nil {
					errs[i] = fmt.Errorf("fleet: device %q: diagnosis: %w", md.id, err)
					return
				}
			}
		}(i, sh)
	}
	initWG.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Arm the injectors now that setup traffic is done: fault
	// schedules count serving requests. The goroutine-start edges
	// below publish these writes to the shards.
	for _, id := range m.order {
		if md := m.devs[id]; md.inj != nil {
			md.inj.SetArmed(true)
		}
	}

	m.runWG.Add(cfg.Shards)
	for _, sh := range m.shards {
		go sh.run(&m.runWG, cfg)
	}
	if cfg.Health.ProbeInterval > 0 {
		m.proberWG.Add(1)
		go m.probeLoop(cfg.Health.ProbeInterval)
	}
	return m, nil
}

// probeLoop periodically sweeps quarantined devices with recovery
// probes, so an idle fleet (no traffic to trigger the deterministic
// rejection-count probe) still heals. It exits when Close begins.
func (m *Manager) probeLoop(interval time.Duration) {
	defer m.proberWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.stopProber:
			return
		case <-t.C:
			m.probeQuarantined()
		}
	}
}

// probeQuarantined asks every shard to recovery-probe its quarantined
// devices and waits for the sweep to finish.
func (m *Manager) probeQuarantined() {
	var wg sync.WaitGroup

	m.mu.RLock()
	if m.closed {
		m.mu.RUnlock()
		return
	}
	wg.Add(len(m.shards))
	ops := make([]*shardOp, 0, len(m.shards))
	for _, sh := range m.shards {
		op := m.getOp()
		op.probe = true
		op.wg = &wg
		op.enq = time.Now()
		sh.enqueue(op)
		ops = append(ops, op)
	}
	m.mu.RUnlock()

	wg.Wait()
	for _, op := range ops {
		m.putOp(op)
	}
}

// Close stops the recovery prober, stops accepting new work, lets
// every shard drain its ingress ring, and waits for the shard
// goroutines to exit. It is idempotent and safe for concurrent use:
// every caller — first or not — returns only after the fleet has fully
// drained.
func (m *Manager) Close() {
	m.closeOnce.Do(func() {
		// The prober must be gone before the shards shut down: it
		// enqueues probe operations through their rings.
		close(m.stopProber)
		m.proberWG.Wait()

		m.mu.Lock()
		m.closed = true
		m.mu.Unlock()

		// Every producer enqueues under m.mu and checks closed first,
		// so after the write lock above the rings can only shrink. Flip
		// the shards to closing and wake any parked consumer; each
		// drains what remains and exits. A consumer about to park
		// re-checks closing before blocking, so the shutdown wake
		// cannot be lost.
		for _, sh := range m.shards {
			sh.closing.Store(true)
			select {
			case sh.wake <- struct{}{}:
			default:
			}
		}
	})
	m.runWG.Wait()
}

// Shards returns the worker-pool size.
func (m *Manager) Shards() int { return m.cfg.Shards }

// DeviceIDs returns the fleet's device IDs in membership order
// (configuration order, with runtime attaches appended).
func (m *Manager) DeviceIDs() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.order...)
}

// Device returns a stats snapshot of one device.
func (m *Manager) Device(id string) (DeviceSnapshot, bool) {
	m.mu.RLock()
	md, ok := m.devs[id]
	m.mu.RUnlock()
	if !ok {
		return DeviceSnapshot{}, false
	}
	return md.snapshot(), true
}

// Devices returns stats snapshots of every device in membership
// order.
func (m *Manager) Devices() []DeviceSnapshot {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]DeviceSnapshot, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.devs[id].snapshot())
	}
	return out
}

// DeviceHealth returns one device's resilience view: health state,
// anomaly streaks, and the full transition log.
func (m *Manager) DeviceHealth(id string) (HealthReport, bool) {
	m.mu.RLock()
	md, ok := m.devs[id]
	m.mu.RUnlock()
	if !ok {
		return HealthReport{}, false
	}
	md.mu.Lock()
	defer md.mu.Unlock()
	md.flushObsLocked()
	return HealthReport{
		ID:                      md.id,
		Health:                  md.health,
		ConsecutiveErrors:       md.consecErr,
		ConsecutiveTimeouts:     md.consecSlow,
		RejectedSinceQuarantine: md.rejections,
		Probes:                  md.stats.vals[statProbes],
		Transitions:             append([]HealthTransition(nil), md.translog...),
	}, true
}

// DeviceModel returns one device's model view: model-health state,
// sliding accuracy windows, fallback/re-diagnosis counters, and the
// full model-transition log.
func (m *Manager) DeviceModel(id string) (ModelReport, bool) {
	m.mu.RLock()
	md, ok := m.devs[id]
	m.mu.RUnlock()
	if !ok {
		return ModelReport{}, false
	}
	md.mu.Lock()
	defer md.mu.Unlock()
	md.flushObsLocked()
	return ModelReport{
		ID:               md.id,
		ModelHealth:      md.modelHealth,
		PredictorEnabled: md.enabled,
		HLAccuracy:       md.driftRep.HLAccuracy(),
		NLAccuracy:       md.driftRep.NLAccuracy(),
		HLWindow:         md.driftRep.HLSeen,
		DistResets:       md.driftRep.DistResets,
		FallbackServed:   md.fallbackServed,
		Rediags:          md.rediags,
		Transitions:      append([]ModelTransition(nil), md.modelLog...),
	}, true
}

// ModelLog returns every device's model-transition log in
// configuration order. Like HealthLog, the marshaled log is
// byte-identical across runs and shard counts given deterministic
// per-device request streams.
func (m *Manager) ModelLog() []DeviceModelLog {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]DeviceModelLog, 0, len(m.order))
	for _, id := range m.order {
		md := m.devs[id]
		md.mu.Lock()
		out = append(out, DeviceModelLog{
			ID:          md.id,
			ModelHealth: md.modelHealth,
			Transitions: append([]ModelTransition(nil), md.modelLog...),
		})
		md.mu.Unlock()
	}
	return out
}

// Rediagnose forces a full re-diagnosis of one device, synchronously,
// on its owning shard — the operator path behind the daemon's POST
// /v1/devices/{id}/rediagnose. It returns once the probe finishes: nil
// when a fresh predictor was hot-swapped in, an error when the device
// is unknown, quarantined, or the re-diagnosis failed (the device then
// serves conservative fallback predictions).
func (m *Manager) Rediagnose(id string) error {
	var wg sync.WaitGroup
	var err error
	m.mu.RLock()
	if m.closed {
		m.mu.RUnlock()
		return ErrManagerClosed
	}
	md, ok := m.devs[id]
	if !ok {
		m.mu.RUnlock()
		return fmt.Errorf("device %q: %w", id, ErrUnknownDevice)
	}
	wg.Add(1)
	op := m.getOp()
	op.rediag = md
	op.rediagErr = &err
	op.wg = &wg
	op.enq = time.Now()
	m.shards[md.shard].enqueue(op)
	m.mu.RUnlock()
	wg.Wait()
	m.putOp(op)
	return err
}

// HealthLog returns every device's health-transition log in
// configuration order. With deterministic per-device request streams
// and fault schedules, the marshaled log is byte-identical across
// runs and shard counts.
func (m *Manager) HealthLog() []DeviceHealthLog {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]DeviceHealthLog, 0, len(m.order))
	for _, id := range m.order {
		md := m.devs[id]
		md.mu.Lock()
		out = append(out, DeviceHealthLog{
			ID:          md.id,
			Health:      md.health,
			Transitions: append([]HealthTransition(nil), md.translog...),
		})
		md.mu.Unlock()
	}
	return out
}

// Metrics returns the fleet-wide aggregate: summed counters and
// latency percentiles computed from the merge of every device's
// histogram buckets (no samples are copied or sorted). Quarantined
// (and mid-probe) devices still contribute their counters and
// latencies, but are excluded from the fleet accuracy figures and
// counted in the UnhealthyDevices gauge instead. As a side effect the
// fleet-level registry gauges are refreshed, so the daemon's
// Prometheus endpoint calls Metrics before exposition.
func (m *Manager) Metrics() Metrics {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var c, acc Counters
	var merged obs.HistogramSnapshot
	unhealthy, fallback := 0, 0
	for _, id := range m.order {
		md := m.devs[id]
		md.mu.Lock()
		md.flushObsLocked()
		devCounters := md.counters()
		c = c.Add(devCounters)
		inFallback := md.modelHealth.Conservative()
		if inFallback {
			fallback++
		}
		if md.health == Quarantined || md.health == Recovering {
			unhealthy++
		} else if !inFallback {
			// Fallback devices serve deliberately conservative
			// predictions; including them would smear the fleet
			// accuracy figures with known-degraded models.
			acc = acc.Add(devCounters)
		}
		merged.Merge(md.stats.lat.Snapshot())
		md.mu.Unlock()
	}
	m.gDevices.Set(int64(len(m.order)))
	m.gShards.Set(int64(m.cfg.Shards))
	m.gUnhealthy.Set(int64(unhealthy))
	m.gFallback.Set(int64(fallback))
	for _, sh := range m.shards {
		sh.depthG.Set(int64(sh.q.depth()))
	}
	return Metrics{
		Devices:          len(m.order),
		Shards:           m.cfg.Shards,
		UnhealthyDevices: unhealthy,
		FallbackModels:   fallback,
		Counters:         c,
		AccuracyCounters: acc,
		HLRate:           c.HLRate(),
		HLAccuracy:       acc.HLAccuracy(),
		NLAccuracy:       acc.NLAccuracy(),
		Latency:          Summarize(merged),
	}
}

// LatencyDigest returns the merge of every device's latency histogram
// buckets — the fleet's raw latency material, in mergeable form. The
// cluster layer combines these across nodes to compute cluster-wide
// percentiles without shipping samples.
func (m *Manager) LatencyDigest() obs.HistogramSnapshot {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var merged obs.HistogramSnapshot
	for _, id := range m.order {
		md := m.devs[id]
		md.mu.Lock()
		merged.Merge(md.stats.lat.Snapshot())
		md.mu.Unlock()
	}
	return merged
}

// Registry returns the metrics registry the fleet records into — the
// one passed in Config.Registry, or the private default. The daemon
// serves it at GET /metrics.
func (m *Manager) Registry() *obs.Registry { return m.cfg.Registry }
