package fleet

import (
	"fmt"
	"sync"

	"ssdcheck/internal/blockdev"
)

// Request is one fleet request: a block I/O addressed to a device by
// ID.
type Request struct {
	DeviceID string      `json:"device"`
	Op       blockdev.Op `json:"-"`
	LBA      int64       `json:"lba"`
	Sectors  int         `json:"sectors"`
}

// block converts to the device vocabulary; a zero length defaults to
// one page. Negative lengths and out-of-range LBAs are rejected by
// SubmitBatch before this runs.
func (r Request) block() blockdev.Request {
	if r.Sectors <= 0 {
		r.Sectors = blockdev.SectorsPerPage
	}
	return blockdev.Request{Op: r.Op, LBA: r.LBA, Sectors: r.Sectors}
}

// Submit routes one request to the shard owning the device, runs it
// through the resilience pipeline, and returns the prediction plus the
// observed outcome. It blocks until the request completes. The
// request's own failure (unknown device, quarantine, exhausted
// retries) is returned as the error, so single-request callers need
// not inspect Result.Err.
func (m *Manager) Submit(deviceID string, op blockdev.Op, lba int64, sectors int) (Result, error) {
	out, err := m.SubmitBatch([]Request{{DeviceID: deviceID, Op: op, LBA: lba, Sectors: sectors}})
	if err != nil {
		return Result{}, err
	}
	return out[0], out[0].Err
}

// SubmitBatch routes a batch of requests through the per-shard queues
// and returns one result per request, in input order. Requests to the
// same device are processed in their batch order; requests to devices
// on different shards proceed in parallel.
//
// Failures are per-request: an unknown device, an invalid address, a
// quarantined device or an exhausted retry budget mark only that
// entry's Result.Err (typed, errors.Is-compatible), and the rest of
// the batch proceeds — one failing device never poisons a batch for
// the healthy ones. The returned error is reserved for batch-level
// problems (a closed manager).
func (m *Manager) SubmitBatch(reqs []Request) ([]Result, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	out := make([]Result, len(reqs))

	// The read lock covers device lookup (membership changes under the
	// write lock via Attach/Detach) and orders every channel send before
	// Close's close(sh.reqs); shards keep draining until the channels
	// close, so a send accepted here always completes.
	m.mu.RLock()
	if m.closed {
		m.mu.RUnlock()
		return nil, ErrManagerClosed
	}

	// Validate addressing up front; invalid entries fail in place and
	// are never dispatched.
	perShard := make(map[*shard][]batchItem)
	for i, r := range reqs {
		md, ok := m.devs[r.DeviceID]
		if !ok {
			out[i] = errResult(r.DeviceID, fmt.Errorf("device %q: %w", r.DeviceID, ErrUnknownDevice))
			continue
		}
		if cap := md.dev.CapacitySectors(); r.LBA < 0 || r.LBA >= cap {
			out[i] = errResult(r.DeviceID, fmt.Errorf("fleet: device %q: LBA %d outside [0, %d)", r.DeviceID, r.LBA, cap))
			continue
		}
		if r.Sectors < 0 {
			out[i] = errResult(r.DeviceID, fmt.Errorf("fleet: device %q: negative request length %d", r.DeviceID, r.Sectors))
			continue
		}
		sh := m.shards[md.shard]
		perShard[sh] = append(perShard[sh], batchItem{md: md, req: r.block(), idx: i})
	}
	if len(perShard) == 0 {
		m.mu.RUnlock()
		return out, nil
	}

	var wg sync.WaitGroup
	wg.Add(len(perShard))
	for sh, items := range perShard {
		sh.reqs <- shardBatch{items: items, out: out, wg: &wg}
	}
	m.mu.RUnlock()

	wg.Wait()
	return out, nil
}
