package fleet

import (
	"fmt"
	"sync"
	"time"

	"ssdcheck/internal/blockdev"
)

// Request is one fleet request: a block I/O addressed to a device by
// ID.
type Request struct {
	DeviceID string      `json:"device"`
	Op       blockdev.Op `json:"-"`
	LBA      int64       `json:"lba"`
	Sectors  int         `json:"sectors"`
}

// block converts to the device vocabulary; a zero length defaults to
// one page. Negative lengths and out-of-range LBAs are rejected by
// the submit paths before this runs.
func (r Request) block() blockdev.Request {
	if r.Sectors <= 0 {
		r.Sectors = blockdev.SectorsPerPage
	}
	return blockdev.Request{Op: r.Op, LBA: r.LBA, Sectors: r.Sectors}
}

// lookup resolves and validates one request's addressing under m.mu.
// The returned error is the per-request failure (unknown device, bad
// address); md is non-nil iff err is nil.
func (m *Manager) lookup(r Request) (*managedDevice, error) {
	md, ok := m.devs[r.DeviceID]
	if !ok {
		return nil, fmt.Errorf("device %q: %w", r.DeviceID, ErrUnknownDevice)
	}
	if cap := md.dev.CapacitySectors(); r.LBA < 0 || r.LBA >= cap {
		return nil, fmt.Errorf("fleet: device %q: LBA %d outside [0, %d)", r.DeviceID, r.LBA, cap)
	}
	if r.Sectors < 0 {
		return nil, fmt.Errorf("fleet: device %q: negative request length %d", r.DeviceID, r.Sectors)
	}
	return md, nil
}

// Submit routes one request to the shard owning the device, runs it
// through the resilience pipeline, and returns the prediction plus the
// observed outcome. It blocks until the request completes. The
// request's own failure (unknown device, quarantine, exhausted
// retries) is returned as the error, so single-request callers need
// not inspect Result.Err.
//
// This is the sharded fast path: no batch assembly, no per-shard
// fan-out bookkeeping — one pooled operation carrying its result
// inline goes straight into the owning shard's ingress ring, and the
// whole round trip allocates nothing in steady state.
func (m *Manager) Submit(deviceID string, op blockdev.Op, lba int64, sectors int) (Result, error) {
	r := Request{DeviceID: deviceID, Op: op, LBA: lba, Sectors: sectors}

	m.mu.RLock()
	if m.closed {
		m.mu.RUnlock()
		return Result{}, ErrManagerClosed
	}
	md, err := m.lookup(r)
	if err != nil {
		m.mu.RUnlock()
		return errResult(deviceID, err), err
	}
	sop := m.getOp()
	sop.items = append(sop.items, batchItem{md: md, req: r.block(), idx: 0})
	sop.out = sop.inline[:1]
	sop.wg = &sop.ownWG
	sop.ownWG.Add(1)
	sop.enq = time.Now()
	m.shards[md.shard].enqueue(sop)
	m.mu.RUnlock()

	sop.ownWG.Wait()
	res := sop.inline[0]
	m.putOp(sop)
	return res, res.Err
}

// SubmitBatch routes a batch of requests through the per-shard ingress
// rings and returns one result per request, in input order. It is
// SubmitBatchInto with a freshly allocated result slice — callers on
// the hot path that want the allocation-free round trip should hold a
// result buffer and call SubmitBatchInto directly.
func (m *Manager) SubmitBatch(reqs []Request) ([]Result, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	out := make([]Result, len(reqs))
	if err := m.SubmitBatchInto(reqs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// SubmitBatchInto routes a batch of requests through the per-shard
// ingress rings, writing the result for reqs[i] into out[i]. Requests
// to the same device are processed in their batch order; requests to
// devices on different shards proceed in parallel. len(out) must equal
// len(reqs).
//
// Failures are per-request: an unknown device, an invalid address, a
// quarantined device or an exhausted retry budget mark only that
// entry's Result.Err (typed, errors.Is-compatible), and the rest of
// the batch proceeds — one failing device never poisons a batch for
// the healthy ones. The returned error is reserved for batch-level
// problems (a closed manager, a length mismatch).
//
// The round trip is allocation-free in steady state: per-shard
// operations and the fan-out table come from pools and are recycled
// after the batch's WaitGroup clears, so a caller reusing its request
// and result slices submits millions of batches without touching the
// heap.
func (m *Manager) SubmitBatchInto(reqs []Request, out []Result) error {
	if len(reqs) == 0 {
		return nil
	}
	if len(out) != len(reqs) {
		return fmt.Errorf("fleet: SubmitBatchInto: %d results for %d requests", len(out), len(reqs))
	}

	// The read lock covers device lookup (membership changes under the
	// write lock via Attach/Detach) and orders every enqueue before
	// Close flips the shards to closing; shards drain their rings fully
	// before exiting, so an enqueue accepted here always completes.
	m.mu.RLock()
	if m.closed {
		m.mu.RUnlock()
		return ErrManagerClosed
	}

	// Fan out per shard. Invalid entries fail in place and are never
	// dispatched; valid ones append to their shard's pooled operation.
	d := m.getDispatch()
	for i, r := range reqs {
		md, err := m.lookup(r)
		if err != nil {
			out[i] = errResult(r.DeviceID, err)
			continue
		}
		sop := d.ops[md.shard]
		if sop == nil {
			sop = m.getOp()
			sop.out = out
			sop.wg = &d.wg
			d.ops[md.shard] = sop
			d.n++
		}
		sop.items = append(sop.items, batchItem{md: md, req: r.block(), idx: i})
	}
	if d.n == 0 {
		m.mu.RUnlock()
		m.putDispatch(d)
		return nil
	}
	d.wg.Add(d.n)
	now := time.Now()
	for sid, sop := range d.ops {
		if sop != nil {
			sop.enq = now
			m.shards[sid].enqueue(sop)
		}
	}
	m.mu.RUnlock()

	d.wg.Wait()
	for sid, sop := range d.ops {
		if sop != nil {
			d.ops[sid] = nil
			m.putOp(sop)
		}
	}
	d.n = 0
	m.putDispatch(d)
	return nil
}

// dispatch is the pooled fan-out table behind one SubmitBatchInto
// call: one operation slot per shard plus the batch's WaitGroup. Slots
// are indexed by shard ID; n counts the non-nil ones.
type dispatch struct {
	wg  sync.WaitGroup
	ops []*shardOp
	n   int
}

func (m *Manager) getOp() *shardOp {
	return m.opPool.Get().(*shardOp)
}

func (m *Manager) putOp(op *shardOp) {
	op.reset()
	m.opPool.Put(op)
}

func (m *Manager) getDispatch() *dispatch {
	d := m.dispatchPool.Get().(*dispatch)
	if len(d.ops) < len(m.shards) {
		d.ops = make([]*shardOp, len(m.shards))
	}
	return d
}

func (m *Manager) putDispatch(d *dispatch) {
	m.dispatchPool.Put(d)
}
