package fleet

import (
	"bytes"
	"strings"
	"testing"

	"ssdcheck/internal/obs"
)

// obsConfig attaches a fresh registry and a tracer at the given sample
// rate to the standard test config.
func obsConfig(devs []DeviceSpec, shards int, rate float64) (Config, *obs.Tracer) {
	cfg := testConfig(devs, shards)
	reg := obs.NewRegistry()
	tr := obs.NewTracer(99, rate, 128)
	cfg.Registry = reg
	cfg.Recorder = obs.Observer{Reg: reg, Tr: tr}
	return cfg, tr
}

// TestTraceDeterminism: with the same seed and sample rate, the
// exported trace bytes must be identical across repeated runs and
// across shard counts — the tracer's core promise (spans live on the
// per-device virtual clocks, the sampler is a pure hash, and rings are
// per device, so shard interleaving cannot leak into the export).
func TestTraceDeterminism(t *testing.T) {
	const n = 600
	devs := testSpecs()
	strs := streams(devs, n)

	for _, rate := range []float64{1, 0.2} {
		var base []byte
		for _, shards := range []int{1, 1, 3} {
			cfg, tr := obsConfig(devs, shards, rate)
			runInterleaved(t, cfg, strs, n)
			var buf bytes.Buffer
			if err := tr.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			if buf.Len() < 100 {
				t.Fatalf("rate %v: export suspiciously small (%d bytes)", rate, buf.Len())
			}
			if base == nil {
				base = buf.Bytes()
				continue
			}
			if !bytes.Equal(base, buf.Bytes()) {
				t.Errorf("rate %v shards %d: trace export differs from baseline", rate, shards)
			}
		}
	}
}

// TestTraceContents checks the spans a traced fleet request records:
// every successful request carries the full queue → route → predict →
// submit → calibrate life, with monotone virtual-clock stamps.
func TestTraceContents(t *testing.T) {
	const n = 200
	devs := testSpecs()[:2]
	strs := streams(devs, n)
	cfg, tr := obsConfig(devs, 2, 1)
	runInterleaved(t, cfg, strs, n)

	traces := tr.Traces()
	if len(traces) == 0 {
		t.Fatal("rate-1 tracer recorded nothing")
	}
	for _, rt := range traces {
		want := []string{"queue", "route", "predict", "submit", "calibrate"}
		if len(rt.Spans) != len(want) {
			t.Fatalf("trace %s/%d spans = %+v, want names %v", rt.Device, rt.Seq, rt.Spans, want)
		}
		for i, sp := range rt.Spans {
			if sp.Name != want[i] {
				t.Fatalf("trace %s/%d span %d = %q, want %q", rt.Device, rt.Seq, i, sp.Name, want[i])
			}
			if sp.End < sp.Start {
				t.Fatalf("span %+v runs backwards", sp)
			}
			if i > 0 && sp.Start < rt.Spans[i-1].Start {
				t.Fatalf("trace %s/%d: span %q starts before its predecessor", rt.Device, rt.Seq, sp.Name)
			}
		}
		if sub := rt.Spans[3]; sub.End.Sub(sub.Start) != rt.Latency {
			t.Fatalf("trace %s/%d: submit span %v does not match latency %v",
				rt.Device, rt.Seq, sub.End.Sub(sub.Start), rt.Latency)
		}
	}
}

// TestFleetRegistrySeries: after traffic, the shared registry exposes
// the per-device and fleet-level series the daemon scrapes.
func TestFleetRegistrySeries(t *testing.T) {
	const n = 150
	devs := testSpecs()[:2]
	strs := streams(devs, n)
	cfg, _ := obsConfig(devs, 1, 0)

	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for step := 0; step < n; step++ {
		batch := make([]Request, 0, len(devs))
		for _, d := range devs {
			r := strs[d.ID][step]
			batch = append(batch, Request{DeviceID: d.ID, Op: r.Op, LBA: r.LBA, Sectors: r.Sectors})
		}
		if _, err := m.SubmitBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	m.Metrics() // refreshes the fleet gauges

	var buf bytes.Buffer
	if err := m.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`ssdcheck_requests_total{device="dev-a",op=`,
		`ssdcheck_predicted_hl_total{device="dev-a"}`,
		`ssdcheck_observed_hl_total{device="dev-d"}`,
		`ssdcheck_request_latency_seconds_bucket{device="dev-a",le=`,
		`ssdcheck_request_latency_seconds_count{device="dev-a"}`,
		`ssdcheck_device_health{device="dev-a"} 0`,
		`ssdcheck_device_clock_ns{device="dev-a"}`,
		"ssdcheck_fleet_devices 2",
		"ssdcheck_fleet_shards 1",
		"ssdcheck_fleet_unhealthy_devices 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("registry output missing %q", want)
		}
	}
}

// TestSnapshotsMatchRegistry: the JSON snapshot counters and the
// registry series are two views of the same atomics.
func TestSnapshotsMatchRegistry(t *testing.T) {
	const n = 100
	devs := testSpecs()[:1]
	strs := streams(devs, n)
	cfg, _ := obsConfig(devs, 1, 0)
	snaps := runInterleaved(t, cfg, strs, n)

	if got := snaps[0].Counters.Requests; got != n {
		t.Fatalf("snapshot requests = %d, want %d", got, n)
	}
	if snaps[0].Latency.P50 <= 0 || snaps[0].Latency.P90 < snaps[0].Latency.P50 ||
		snaps[0].Latency.P99 < snaps[0].Latency.P90 {
		t.Fatalf("latency percentiles not ordered: %+v", snaps[0].Latency)
	}
	if snaps[0].Latency.Max < snaps[0].Latency.P99 {
		t.Fatalf("max below p99: %+v", snaps[0].Latency)
	}
}
