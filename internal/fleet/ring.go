package fleet

import (
	"runtime"
	"sync/atomic"
)

// ingressRing is a bounded multi-producer single-consumer queue of
// shard operations — the fleet's replacement for the per-shard request
// channel. Producers (SubmitBatch callers, the prober, attach/detach)
// claim slots with one CAS on the tail; the shard goroutine consumes
// with plain loads and two stores. No mutex, no channel send, and no
// allocation sit on the hot path, so many client goroutines can feed
// one shard without serializing on anything wider than a cache line.
//
// The layout is the classic bounded sequence-number design (Vyukov):
// each slot carries a sequence word that encodes whether it is free for
// the producer lapping it (seq == pos) or holds a value for the
// consumer (seq == pos+1). head and tail live on their own cache lines
// so producers hammering tail never invalidate the consumer's head
// line.
type ingressRing struct {
	mask  uint64
	slots []ringSlot

	_    [cacheLine - 24]byte // keep tail off the header's line
	tail atomic.Uint64        // next position a producer claims
	_    [cacheLine - 8]byte  // ... and head off tail's
	head atomic.Uint64        // next position the consumer drains
}

// cacheLine is the assumed coherence granule. 64 bytes covers amd64
// and arm64; being wrong only costs false sharing, never correctness.
const cacheLine = 64

// ringSlot is one queue cell, padded so neighboring slots do not share
// a line between a storing producer and the draining consumer.
type ringSlot struct {
	seq atomic.Uint64
	op  *shardOp
	_   [cacheLine - 16]byte
}

// newIngressRing builds a ring with at least depth slots, rounded up
// to a power of two (minimum 2) so masking replaces modulo.
func newIngressRing(depth int) *ingressRing {
	n := 2
	for n < depth {
		n <<= 1
	}
	r := &ingressRing{mask: uint64(n - 1), slots: make([]ringSlot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues op if the ring has room and reports whether it did.
// Safe for any number of concurrent producers. A false return means
// the ring was full at the attempt; callers spin (see shard.enqueue) —
// the consumer drains independently, so room always reappears.
func (r *ingressRing) push(op *shardOp) bool {
	for {
		pos := r.tail.Load()
		slot := &r.slots[pos&r.mask]
		switch seq := slot.seq.Load(); {
		case seq == pos:
			if r.tail.CompareAndSwap(pos, pos+1) {
				slot.op = op
				slot.seq.Store(pos + 1)
				return true
			}
			// Another producer claimed pos; retry at the new tail.
		case seq < pos:
			// The consumer has not freed this slot yet: full.
			return false
		default:
			// seq > pos: tail moved between the loads; retry.
		}
	}
}

// pop dequeues the next operation, or returns nil when the ring is
// empty. Single consumer only — the owning shard goroutine.
func (r *ingressRing) pop() *shardOp {
	pos := r.head.Load()
	slot := &r.slots[pos&r.mask]
	if slot.seq.Load() != pos+1 {
		return nil
	}
	op := slot.op
	slot.op = nil // no stale reference keeps a batch alive
	slot.seq.Store(pos + uint64(len(r.slots)))
	r.head.Store(pos + 1)
	return op
}

// depth reports how many operations are queued right now. It races
// benignly with producers and the consumer; the ingress gauge only
// needs a point-in-time reading.
func (r *ingressRing) depth() int {
	d := int64(r.tail.Load()) - int64(r.head.Load())
	if d < 0 {
		return 0
	}
	return int(d)
}

// enqueue blocks until the shard's ring accepts op, yielding between
// attempts — the fleet's backpressure: a full queue slows producers
// down instead of growing memory. Callers hold m.mu (read or write),
// which orders every enqueue before Close flips the shard to closing,
// so an accepted operation is always drained. After the push it wakes
// the shard if it had parked.
func (s *shard) enqueue(op *shardOp) {
	for !s.q.push(op) {
		runtime.Gosched()
	}
	// Park/wake protocol, producer half: the consumer publishes
	// idleness before its final recheck, so either it sees our push or
	// we see its idle flag and hand it the wake token. The CAS elects
	// exactly one waker among concurrent producers.
	if s.idle.CompareAndSwap(true, false) {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
}
