package fleet

import (
	"time"

	"ssdcheck/internal/simclock"
)

// SteeringSnapshot is the read-only per-device signal bundle a
// fleet-level scheduler needs to place I/O: the resilience and
// model-health states, the predictor's device-level read outlook, and
// the device's observed high-latency streak. It is deliberately small —
// consumers like the erasure-coded volume (internal/ecvol) and the
// volume-manager write steerer (internal/lvm) rank whole devices, not
// LBAs — and deliberately cached: every field is refreshed by the
// owning shard after each request, so reading it never touches the
// (non-thread-safe) predictor or simulator.
type SteeringSnapshot struct {
	// ID names the device.
	ID string `json:"id"`

	// Health and ModelHealth are the device's positions in the two
	// state machines.
	Health      Health      `json:"health"`
	ModelHealth ModelHealth `json:"model_health"`

	// Available reports whether the device currently accepts requests
	// (everything but quarantined; a recovering device serves its
	// probation traffic).
	Available bool `json:"available"`

	// Conservative reports whether the device's predictions are the
	// static always-NL fallback (model health fallback/rediagnosing) —
	// its PredictedHL=false then carries no information, and schedulers
	// should deprioritize it.
	Conservative bool `json:"conservative"`

	// PredictedHL is the model's device-level read outlook: whether a
	// nominal one-page read would be classified high-latency on the
	// worst of the device's internal volumes right now (a pending GC or
	// flush window on any volume flips it). ReadEET is the matching
	// worst-case estimated latency.
	PredictedHL bool          `json:"predicted_hl"`
	ReadEET     time.Duration `json:"read_eet_ns"`

	// HLStreak counts consecutive served completions observed
	// high-latency (or timeout-class). It catches irregularity the
	// model does not cover — injected latency storms, unmodeled
	// slowdowns — with one request of lag: the streak opens on the
	// first slow completion and closes on the first clean one.
	HLStreak int `json:"hl_streak"`

	// Clock is the device's virtual time.
	Clock simclock.Time `json:"clock_ns"`
}

// Risky reports whether a read placed on the device right now is
// likely to stall: the model predicts HL, or the device is mid
// high-latency streak (storm, unmodeled slowdown). Unavailability is
// separate — check Available.
func (s SteeringSnapshot) Risky() bool {
	return s.PredictedHL || s.HLStreak > 0
}

// steeringLocked assembles the snapshot from cached state. Callers
// hold md.mu.
func (md *managedDevice) steeringLocked() SteeringSnapshot {
	return SteeringSnapshot{
		ID:           md.id,
		Health:       md.health,
		ModelHealth:  md.modelHealth,
		Available:    md.health != Quarantined,
		Conservative: md.modelHealth.Conservative(),
		PredictedHL:  md.readRisk.HL,
		ReadEET:      md.readRisk.EET,
		HLStreak:     md.hlStreak,
		Clock:        md.clock,
	}
}

// Steering returns the steering snapshot of one device.
func (m *Manager) Steering(id string) (SteeringSnapshot, bool) {
	m.mu.RLock()
	md, ok := m.devs[id]
	m.mu.RUnlock()
	if !ok {
		return SteeringSnapshot{}, false
	}
	md.mu.Lock()
	defer md.mu.Unlock()
	return md.steeringLocked(), true
}

// SteeringAll returns every device's steering snapshot in membership
// order. It is the bulk form schedulers poll between requests; unlike
// Devices it copies no counters, logs or histograms.
func (m *Manager) SteeringAll() []SteeringSnapshot {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]SteeringSnapshot, 0, len(m.order))
	for _, id := range m.order {
		md := m.devs[id]
		md.mu.Lock()
		out = append(out, md.steeringLocked())
		md.mu.Unlock()
	}
	return out
}
