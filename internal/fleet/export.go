package fleet

import (
	"fmt"

	"ssdcheck/internal/extract"
	"ssdcheck/internal/faults"
	"ssdcheck/internal/obs"
	"ssdcheck/internal/simclock"
	"ssdcheck/internal/ssd"
)

// DeviceState is a device's model plane in wire form: everything a
// remote node needs to take ownership of a diagnosed device over the
// network — the spec it was built from, its current feature baseline
// (diagnosis or the latest re-diagnosis), virtual clock, health and
// model state machines with their logs, cumulative counters, and the
// latency histogram digest.
//
// It is deliberately not the full simulator state: the simulated
// flash array (FTL tables, buffer occupancy, wear) is rebuilt on the
// importing node from the spec's seed plus preconditioning, exactly
// as a fresh diagnosis run would. That trades perfect simulator
// continuity — which the in-process PortableDevice path keeps — for a
// bounded, serializable transfer, the same trade a real deployment
// makes when it re-opens a drive on a new head node and restores only
// the monitoring state. The predictor's sliding accuracy windows
// restart empty on the importing node (cumulative accuracy counters
// carry over); the drift watchdog re-warms within its MinSamples
// window.
type DeviceState struct {
	// Spec is the device's build recipe (ID, preset/config, seed,
	// predictor params, fault plan). Its Features field is cleared on
	// export; Features below is authoritative.
	Spec DeviceSpec `json:"spec"`

	// Features is the current feature baseline — the startup diagnosis
	// or the most recent successful re-diagnosis.
	Features *extract.Features `json:"features"`

	// Clock is the device's virtual time at export.
	Clock simclock.Time `json:"clock_ns"`

	// Seq is the routed-request count (including rejections) driving
	// trace sampling and transition sequence numbers.
	Seq int64 `json:"seq"`

	Health      Health      `json:"health"`
	ModelHealth ModelHealth `json:"model_health"`

	// Counters are the cumulative per-device tallies.
	Counters Counters `json:"counters"`

	// Latency is the device's latency histogram digest; buckets merge
	// into the importing node's histogram so percentiles survive the
	// move.
	Latency obs.HistogramSnapshot `json:"latency"`

	// FallbackServed and Rediags are the model-health machine's
	// counters beyond Counters.
	FallbackServed int64 `json:"fallback_served"`
	Rediags        int   `json:"rediags"`

	HealthLog []HealthTransition `json:"health_log,omitempty"`
	ModelLog  []ModelTransition  `json:"model_log,omitempty"`
}

// Validate reports a descriptive error for an unusable state.
func (st *DeviceState) Validate() error {
	if st == nil {
		return fmt.Errorf("fleet: nil device state")
	}
	if st.Spec.ID == "" {
		return fmt.Errorf("fleet: device state with no ID")
	}
	if st.Features == nil {
		return fmt.Errorf("fleet: device state %q carries no features", st.Spec.ID)
	}
	if err := st.Features.Validate(); err != nil {
		return fmt.Errorf("fleet: device state %q: %w", st.Spec.ID, err)
	}
	if st.Spec.Config == nil {
		if _, err := ssd.Preset(st.Spec.Preset, st.Spec.Seed); err != nil {
			return fmt.Errorf("fleet: device state %q: %w", st.Spec.ID, err)
		}
	} else if err := st.Spec.Config.Validate(); err != nil {
		return fmt.Errorf("fleet: device state %q: %w", st.Spec.ID, err)
	}
	return nil
}

// Export captures a detached device's model plane in wire form. The
// handle stays live — Export reads, it does not consume — so a failed
// transfer can still fall back to a local Attach.
func (p *PortableDevice) Export() (*DeviceState, error) {
	if p == nil || p.md == nil {
		return nil, fmt.Errorf("fleet: export of nil or spent device handle")
	}
	md := p.md
	spec := md.spec
	spec.Features = nil
	spec.Shard = 0
	st := &DeviceState{
		Spec:     spec,
		Features: md.feats,
		Clock:    md.now,
	}
	md.mu.Lock()
	st.Seq = md.seq
	st.Health = md.health
	st.ModelHealth = md.modelHealth
	st.Counters = md.counters()
	st.Latency = md.stats.lat.Snapshot()
	st.FallbackServed = md.fallbackServed
	st.Rediags = md.rediags
	st.HealthLog = append([]HealthTransition(nil), md.translog...)
	st.ModelLog = append([]ModelTransition(nil), md.modelLog...)
	md.mu.Unlock()
	return st, nil
}

// ExportDevice detaches a device and returns its model plane in wire
// form — the node-side half of a networked device migration. The
// device is gone from this manager on success; the caller owns
// delivering the state to its new home.
func (m *Manager) ExportDevice(id string) (*DeviceState, error) {
	pd, err := m.Detach(id)
	if err != nil {
		return nil, err
	}
	return pd.Export()
}

// ImportDevice rebuilds a device from its wire state and attaches it
// to this fleet: the simulator is reconstructed from the spec's seed
// (preconditioned under this manager's configuration), the predictor
// from the carried features, and the health/model machines, counters,
// logs, and latency digest are restored. The device's virtual clock
// resumes from the carried value when it is ahead of the rebuilt
// simulator's.
func (m *Manager) ImportDevice(st *DeviceState) error {
	if err := st.Validate(); err != nil {
		return err
	}
	m.mu.RLock()
	if m.closed {
		m.mu.RUnlock()
		return ErrManagerClosed
	}
	if _, dup := m.devs[st.Spec.ID]; dup {
		m.mu.RUnlock()
		return fmt.Errorf("fleet: import: duplicate device ID %q", st.Spec.ID)
	}
	cfg := m.cfg
	m.mu.RUnlock()

	spec := st.Spec
	spec.Features = st.Features
	dcfg := ssd.Config{}
	if spec.Config != nil {
		dcfg = *spec.Config
	} else {
		var err error
		dcfg, err = ssd.Preset(spec.Preset, spec.Seed)
		if err != nil {
			return fmt.Errorf("fleet: import %q: %w", spec.ID, err)
		}
	}
	dev, err := ssd.New(dcfg)
	if err != nil {
		return fmt.Errorf("fleet: import %q: %w", spec.ID, err)
	}

	// Build the managed device against a throwaway registry; Attach
	// rebinds everything into this manager's registry with the restored
	// cumulative values.
	tmp := obs.NewRegistry()
	md := &managedDevice{
		id: spec.ID, name: dev.Name(), spec: spec, dev: dev,
		rec:   cfg.Recorder,
		stats: newDeviceStats(tmp, spec.ID),
	}
	md.bindGauges(tmp)
	if spec.Faults != nil {
		inj, err := faults.New(dev, *spec.Faults)
		if err != nil {
			return fmt.Errorf("fleet: import %q: %w", spec.ID, err)
		}
		inj.SetArmed(false)
		md.inj = inj
		md.dev = inj
		md.fallible = inj
	}
	// init preconditions the rebuilt simulator and constructs the
	// predictor from the carried features (no probing: Features is set).
	// The device is not yet shared, so running it on this goroutine is
	// as safe as New's per-shard init.
	if err := md.init(cfg); err != nil {
		return fmt.Errorf("fleet: import %q: %w", spec.ID, err)
	}
	if md.inj != nil {
		md.inj.SetArmed(true)
	}

	if st.Clock > md.now {
		md.now = st.Clock
	}
	md.mu.Lock()
	md.seq = st.Seq
	md.health = st.Health
	md.modelHealth = st.ModelHealth
	md.fallbackServed = st.FallbackServed
	md.rediags = st.Rediags
	md.translog = append([]HealthTransition(nil), st.HealthLog...)
	md.modelLog = append([]ModelTransition(nil), st.ModelLog...)
	restoreTallies(&md.stats, st)
	md.stats.lat.AddSnapshot(st.Latency)
	md.publishLocked()
	md.mu.Unlock()

	return m.Attach(&PortableDevice{md: md})
}

// restoreTallies maps the wire counters back onto the internal tally
// array. The transition tallies are derived from the carried logs —
// they are not in the exported Counters, but the logs are complete.
func restoreTallies(d *deviceStats, st *DeviceState) {
	c := st.Counters
	d.vals[statReads] = c.Reads
	d.vals[statWrites] = c.Writes
	d.vals[statTrims] = c.Trims
	d.vals[statPredictedHL] = c.PredictedHL
	d.vals[statObservedHL] = c.ObservedHL
	d.vals[statHLHits] = c.HLHits
	d.vals[statNLHits] = c.NLHits
	d.vals[statBytes] = c.Bytes
	d.vals[statErrors] = c.Errors
	d.vals[statRejected] = c.Rejected
	d.vals[statRetries] = c.Retries
	d.vals[statTimeouts] = c.Timeouts
	d.vals[statProbes] = c.Probes
	d.vals[statFallback] = c.Fallback
	d.vals[statRediags] = int64(c.Rediags)
	d.vals[statTransitions] = int64(len(st.HealthLog))
	d.vals[statModelTransitions] = int64(len(st.ModelLog))
}
