package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ssdcheck/internal/blockdev"
	"ssdcheck/internal/obs"
)

// Edge-case coverage for the lock-free ingress path: Close racing
// in-flight batches, queue-full backpressure at the smallest legal
// ring, attach/detach interleaved with a saturating client, and the
// per-shard observability series. All of these run under -race in CI
// at GOMAXPROCS 1, 4 and 8.

// TestIngressRing exercises the ring primitive directly: fill to
// capacity, overflow rejected, FIFO drain, and wraparound across many
// times the capacity.
func TestIngressRing(t *testing.T) {
	r := newIngressRing(3) // rounds up to 4
	ops := make([]*shardOp, 9)
	for i := range ops {
		ops[i] = &shardOp{}
	}
	for i := 0; i < 4; i++ {
		if !r.push(ops[i]) {
			t.Fatalf("push %d rejected before capacity", i)
		}
	}
	if r.push(ops[4]) {
		t.Fatal("push accepted beyond capacity")
	}
	if got := r.depth(); got != 4 {
		t.Fatalf("depth = %d, want 4", got)
	}
	for i := 0; i < 4; i++ {
		if got := r.pop(); got != ops[i] {
			t.Fatalf("pop %d = %p, want %p (FIFO violated)", i, got, ops[i])
		}
	}
	if r.pop() != nil {
		t.Fatal("pop from empty ring returned an op")
	}
	// Wraparound: many cycles through the 4-slot ring.
	for cycle := 0; cycle < 100; cycle++ {
		for i := 0; i < 3; i++ {
			if !r.push(ops[i]) {
				t.Fatalf("cycle %d: push %d rejected", cycle, i)
			}
		}
		for i := 0; i < 3; i++ {
			if got := r.pop(); got != ops[i] {
				t.Fatalf("cycle %d: pop %d out of order", cycle, i)
			}
		}
	}
	if got := r.depth(); got != 0 {
		t.Fatalf("depth after drain = %d, want 0", got)
	}
}

// TestIngressCloseRace closes the manager while many goroutines are
// submitting batches as fast as they can. Every SubmitBatch call must
// either complete normally (all results for the batch) or fail whole
// with ErrManagerClosed — never hang on a lost wakeup, never return a
// partial batch, and never run a request on a torn-down shard.
func TestIngressCloseRace(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := testConfig(testSpecs(), shards)
			cfg.QueueDepth = 4 // small ring keeps producers in the spin path too
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var ok, closed atomic.Int64
			start := make(chan struct{})
			var wg sync.WaitGroup
			for c := 0; c < 8; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					specs := testSpecs()
					batch := make([]Request, len(specs))
					for i, d := range specs {
						batch[i] = Request{DeviceID: d.ID, Op: blockdev.Read, LBA: int64((c*31 + i) % 1000 * 8), Sectors: 8}
					}
					<-start
					for {
						res, err := m.SubmitBatch(batch)
						switch {
						case err == nil:
							if len(res) != len(batch) {
								t.Errorf("partial batch: %d results for %d requests", len(res), len(batch))
								return
							}
							ok.Add(1)
						case errors.Is(err, ErrManagerClosed):
							closed.Add(1)
							return
						default:
							t.Errorf("SubmitBatch: %v", err)
							return
						}
					}
				}(c)
			}
			close(start)
			// Let the clients get going, then yank the manager out from
			// under them. Close must wait out every in-flight batch.
			for ok.Load() < 20 {
			}
			m.Close()
			wg.Wait()
			if closed.Load() != 8 {
				t.Fatalf("%d clients saw ErrManagerClosed, want all 8", closed.Load())
			}
			t.Logf("%d batches completed before close", ok.Load())
		})
	}
}

// TestIngressBackpressure runs saturating clients against the smallest
// legal ring (QueueDepth 1 rounds to 2 slots) and checks nothing is
// lost or duplicated: the per-device processed counts must equal
// exactly what the clients submitted. Producers spend most of this
// test in the ring-full spin loop, which is the path a big ring almost
// never takes.
func TestIngressBackpressure(t *testing.T) {
	cfg := testConfig(testSpecs(), 2)
	cfg.QueueDepth = 1
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const perClient = 400
	specs := testSpecs()
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			id := specs[c%len(specs)].ID
			for i := 0; i < perClient; i++ {
				if _, err := m.Submit(id, blockdev.Read, int64(i%1000)*8, 8); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	want := map[string]int64{}
	for c := 0; c < 6; c++ {
		want[specs[c%len(specs)].ID] += perClient
	}
	for _, snap := range m.Devices() {
		if snap.Counters.Requests != want[snap.ID] {
			t.Errorf("device %s processed %d requests, want %d", snap.ID, snap.Counters.Requests, want[snap.ID])
		}
	}
}

// TestIngressAttachDetachUnderLoad bounces one device between two
// managers while saturating clients hammer the others. Membership ops
// ride the same rings as requests, so this checks they interleave
// cleanly with a full pipeline: no deadlock, no lost requests, and the
// migrant keeps its cumulative counts across every hop.
func TestIngressAttachDetachUnderLoad(t *testing.T) {
	cfg := testConfig(testSpecs(), 2)
	cfg.QueueDepth = 2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	other, err := New(testConfig([]DeviceSpec{{ID: "spare", Preset: "A", Seed: 99}}, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Saturate the devices that are not migrating.
			id := []string{"dev-a", "dev-d", "dev-f"}[c%3]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := m.Submit(id, blockdev.Read, int64(i%1000)*8, 8); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}

	const hops = 40
	var migrated int64
	for i := 0; i < hops; i++ {
		pd, err := m.Detach("dev-h")
		if err != nil {
			t.Fatalf("hop %d detach: %v", i, err)
		}
		if err := other.Attach(pd); err != nil {
			t.Fatalf("hop %d attach(other): %v", i, err)
		}
		if _, err := other.Submit("dev-h", blockdev.Read, int64(i)*8, 8); err != nil {
			t.Fatalf("hop %d submit(other): %v", i, err)
		}
		migrated++
		pd, err = other.Detach("dev-h")
		if err != nil {
			t.Fatalf("hop %d detach(other): %v", i, err)
		}
		if err := m.Attach(pd); err != nil {
			t.Fatalf("hop %d attach: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	for _, snap := range m.Devices() {
		if snap.ID == "dev-h" && snap.Counters.Requests != migrated {
			t.Errorf("migrant processed %d requests across hops, want %d", snap.Counters.Requests, migrated)
		}
	}
}

// TestIngressObsSeries pins the per-shard ingress series: after a
// known number of operations through a single-shard fleet, the wait
// histogram's count is exactly that number and the depth gauge reads
// zero (everything drained). The series names and label shapes are
// part of the dashboard contract.
func TestIngressObsSeries(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(testSpecs()[:1], 1)
	cfg.Registry = reg
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const n = 17
	for i := 0; i < n; i++ {
		if _, err := m.Submit("dev-a", blockdev.Read, int64(i)*8, 8); err != nil {
			t.Fatal(err)
		}
	}
	m.Metrics() // refreshes the depth gauges

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`fleet_ingress_queue_depth{shard="0"} 0`,
		fmt.Sprintf(`fleet_ingress_wait_us_count{shard="0"} %d`, n),
		"# TYPE fleet_ingress_queue_depth gauge",
		"# TYPE fleet_ingress_wait_us histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
