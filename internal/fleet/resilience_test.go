package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"ssdcheck/internal/blockdev"
	"ssdcheck/internal/faults"
	"ssdcheck/internal/trace"
)

// tightHealth is a health policy with small streaks so unit tests
// reach every state quickly.
func tightHealth() HealthPolicy {
	return HealthPolicy{
		DegradeAfterErrors:    2,
		QuarantineAfterErrors: 4,
		ProbeAfterRejections:  8,
		ProbeRequests:         4,
		RecoverAfterOK:        4,
	}
}

// driveSequential pushes n per-device requests through the fleet one
// interleaved batch at a time (per-device order preserved) and returns
// every result.
func driveSequential(t *testing.T, m *Manager, strs map[string][]blockdev.Request, ids []string, n int) []Result {
	t.Helper()
	var all []Result
	for step := 0; step < n; step++ {
		batch := make([]Request, 0, len(ids))
		for _, id := range ids {
			r := strs[id][step]
			batch = append(batch, Request{DeviceID: id, Op: r.Op, LBA: r.LBA, Sectors: r.Sectors})
		}
		res, err := m.SubmitBatch(batch)
		if err != nil {
			t.Fatalf("step %d: batch-level error: %v", step, err)
		}
		all = append(all, res...)
	}
	return all
}

// TestRetryClearsTransients: a short burst of injected transients is
// absorbed entirely by the retry loop — no failed results, no health
// transitions, just retry counters.
func TestRetryClearsTransients(t *testing.T) {
	devs := []DeviceSpec{{
		ID: "r", Preset: "A", Seed: 5,
		Faults: &faults.Config{Schedules: []faults.Schedule{{Kind: faults.Transient, At: 5, Count: 2}}},
	}}
	m, err := New(testConfig(devs, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	for i := 0; i < 10; i++ {
		res, err := m.Submit("r", blockdev.Write, int64(i*4096), 8)
		if err != nil {
			t.Fatalf("request %d failed despite retry budget: %v", i, err)
		}
		if i == 4 && res.Retries != 2 {
			t.Errorf("request %d consumed %d retries, want 2", i, res.Retries)
		}
	}
	snap, _ := m.Device("r")
	if snap.Health != Healthy || snap.Counters.Errors != 0 || snap.Counters.Retries != 2 {
		t.Errorf("snapshot after absorbed transients: health=%v errors=%d retries=%d",
			snap.Health, snap.Counters.Errors, snap.Counters.Retries)
	}
	if hr, _ := m.DeviceHealth("r"); len(hr.Transitions) != 0 {
		t.Errorf("unexpected health transitions: %+v", hr.Transitions)
	}
}

// TestQuarantineAndRecovery walks the full state machine: persistent
// errors degrade then quarantine the device, rejected requests trigger
// recovery probes, and once the fault window passes a probe brings the
// device back to healthy service.
func TestQuarantineAndRecovery(t *testing.T) {
	devs := []DeviceSpec{{
		ID: "q", Preset: "A", Seed: 9,
		Faults: &faults.Config{Schedules: []faults.Schedule{{Kind: faults.Transient, At: 10, Count: 10}}},
	}}
	cfg := testConfig(devs, 1)
	cfg.Retry = RetryPolicy{MaxRetries: -1} // every error surfaces
	cfg.Health = tightHealth()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var served, failed, rejected int
	for i := 0; i < 150; i++ {
		res, _ := m.Submit("q", blockdev.Write, int64(i%512)*4096, 8)
		switch {
		case res.Err == nil:
			served++
		case errors.Is(res.Err, ErrDeviceQuarantined):
			rejected++
		case errors.Is(res.Err, blockdev.ErrTransient):
			failed++
		default:
			t.Fatalf("request %d: unexpected error class: %v", i, res.Err)
		}
	}
	if served+failed+rejected != 150 {
		t.Fatalf("lost requests: served=%d failed=%d rejected=%d", served, failed, rejected)
	}

	hr, ok := m.DeviceHealth("q")
	if !ok {
		t.Fatal("no health report")
	}
	if hr.Health != Healthy {
		t.Fatalf("device did not recover: %v (transitions %+v)", hr.Health, hr.Transitions)
	}
	if hr.Probes == 0 {
		t.Error("no recovery probes ran")
	}
	// The log must walk healthy → degraded → quarantined, visit
	// recovering, and end with a probe pass back to healthy.
	tr := hr.Transitions
	if len(tr) < 4 {
		t.Fatalf("transition log too short: %+v", tr)
	}
	if tr[0].From != Healthy || tr[0].To != Degraded {
		t.Errorf("first transition %+v, want healthy→degraded", tr[0])
	}
	if tr[1].From != Degraded || tr[1].To != Quarantined {
		t.Errorf("second transition %+v, want degraded→quarantined", tr[1])
	}
	last := tr[len(tr)-1]
	if last.From != Recovering || last.To != Healthy || last.Cause != "probe pass" {
		t.Errorf("last transition %+v, want recovering→healthy on probe pass", last)
	}
	snap, _ := m.Device("q")
	if snap.Counters.Rejected == 0 || snap.Counters.Probes == 0 {
		t.Errorf("resilience counters empty: %+v", snap.Counters)
	}
}

// TestStuckBusyQuarantinesOnTimeouts: timeout-class latencies (not
// errors) also walk the device out of service.
func TestStuckBusyQuarantinesOnTimeouts(t *testing.T) {
	devs := []DeviceSpec{{
		ID: "s", Preset: "A", Seed: 13,
		Faults: &faults.Config{Schedules: []faults.Schedule{
			{Kind: faults.StuckBusy, At: 5, Count: 50, Pin: time.Second},
		}},
	}}
	cfg := testConfig(devs, 1)
	cfg.Health = HealthPolicy{
		DegradeAfterTimeouts:    2,
		QuarantineAfterTimeouts: 4,
		ProbeAfterRejections:    -1, // stay quarantined for the assertion
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var timeouts int
	for i := 0; i < 40; i++ {
		res, _ := m.Submit("s", blockdev.Read, int64(i)*4096, 8)
		if res.TimedOut {
			timeouts++
		}
	}
	snap, _ := m.Device("s")
	if snap.Health != Quarantined {
		t.Errorf("health %v after timeout streak, want quarantined", snap.Health)
	}
	if timeouts == 0 || snap.Counters.Timeouts != int64(timeouts) {
		t.Errorf("timeouts: results=%d counter=%d", timeouts, snap.Counters.Timeouts)
	}
}

// TestFailStopAcceptance is the issue's acceptance scenario: a
// 4-device fleet with p=0.01 transient errors everywhere and one
// fail-stop device completes a 10k-per-device run; the failed device
// ends quarantined, the survivors keep serving with accuracy within
// 2pp of a fault-free run, and no batch-level error ever surfaces.
func TestFailStopAcceptance(t *testing.T) {
	const n = 10000
	if testing.Short() {
		t.Skip("acceptance run is long")
	}
	specs := func(withFaults bool) []DeviceSpec {
		devs := testSpecs() // dev-a, dev-d, dev-f, dev-h
		if !withFaults {
			return devs
		}
		for i := range devs {
			fc := &faults.Config{
				Seed:      77 + uint64(i),
				Schedules: []faults.Schedule{{Kind: faults.Transient, Prob: 0.01}},
			}
			if devs[i].ID == "dev-h" {
				fc.Schedules = append(fc.Schedules, faults.Schedule{Kind: faults.FailStop, At: 2000})
			}
			devs[i].Faults = fc
		}
		return devs
	}

	strs := streams(testSpecs(), n)
	ids := []string{"dev-a", "dev-d", "dev-f", "dev-h"}

	run := func(withFaults bool) map[string]DeviceSnapshot {
		m, err := New(testConfig(specs(withFaults), 2))
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		results := driveSequential(t, m, strs, ids, n)
		out := map[string]DeviceSnapshot{}
		for _, snap := range m.Devices() {
			out[snap.ID] = snap
		}
		// Healthy devices never see a per-request error.
		for _, res := range results {
			if res.Err != nil && res.DeviceID != "dev-h" {
				t.Fatalf("healthy device %s returned error: %v", res.DeviceID, res.Err)
			}
		}
		return out
	}

	faulty := run(true)
	clean := run(false)

	if h := faulty["dev-h"].Health; h != Quarantined {
		t.Errorf("fail-stop device ends %v, want quarantined", h)
	}
	for _, id := range []string{"dev-a", "dev-d", "dev-f"} {
		f, c := faulty[id], clean[id]
		if f.Health != Healthy {
			t.Errorf("%s ends %v, want healthy", id, f.Health)
		}
		if f.Counters.Requests != n {
			t.Errorf("%s served %d of %d requests", id, f.Counters.Requests, n)
		}
		if dHL := math.Abs(f.HLAccuracy - c.HLAccuracy); dHL > 0.02 {
			t.Errorf("%s HL accuracy drifted %.4f under faults (%.4f vs %.4f)", id, dHL, f.HLAccuracy, c.HLAccuracy)
		}
		if dNL := math.Abs(f.NLAccuracy - c.NLAccuracy); dNL > 0.02 {
			t.Errorf("%s NL accuracy drifted %.4f under faults (%.4f vs %.4f)", id, dNL, f.NLAccuracy, c.NLAccuracy)
		}
	}
	// The dead device is out of the accuracy aggregate but on the
	// unhealthy gauge — checked via a fresh manager in the faulty run
	// is gone, so re-derive from snapshots instead.
	if faulty["dev-h"].Counters.Rejected == 0 {
		t.Error("fail-stop device bounced no requests")
	}
}

// TestHealthLogDeterminism: same seeds, schedules and per-device
// streams ⇒ byte-identical health-transition logs, across repeated
// runs and across shard counts 1 vs 4.
func TestHealthLogDeterminism(t *testing.T) {
	const n = 2000
	specs := func() []DeviceSpec {
		devs := testSpecs()
		devs[0].Faults = &faults.Config{Seed: 1, Schedules: []faults.Schedule{
			{Kind: faults.Transient, Prob: 0.02},
		}}
		devs[1].Faults = &faults.Config{Seed: 2, Schedules: []faults.Schedule{
			{Kind: faults.StuckBusy, At: 500, Count: 200},
		}}
		devs[2].Faults = &faults.Config{Seed: 3, Schedules: []faults.Schedule{
			{Kind: faults.FailStop, At: 800},
		}}
		devs[3].Faults = &faults.Config{Seed: 4, Schedules: []faults.Schedule{
			{Kind: faults.Drift, At: 300, Factor: 1.3},
			{Kind: faults.Transient, Prob: 0.01},
		}}
		return devs
	}
	strs := streams(testSpecs(), n)
	ids := []string{"dev-a", "dev-d", "dev-f", "dev-h"}

	healthLog := func(shards int) []byte {
		cfg := testConfig(specs(), shards)
		cfg.Retry = RetryPolicy{MaxRetries: -1}
		cfg.Health = tightHealth()
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		driveSequential(t, m, strs, ids, n)
		b, err := json.MarshalIndent(m.HealthLog(), "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	base := healthLog(1)
	if !bytes.Contains(base, []byte("quarantined")) {
		t.Fatalf("schedule produced no quarantine — test is vacuous:\n%s", base)
	}
	for _, shards := range []int{1, 4} {
		if got := healthLog(shards); !bytes.Equal(base, got) {
			t.Errorf("health log diverges at shards=%d\nbase: %s\ngot:  %s", shards, base, got)
		}
	}
}

// TestCloseConcurrent: Close is idempotent and safe under concurrent
// callers racing each other and in-flight submitters; every Close
// returns only after the fleet drained. Run with -race.
func TestCloseConcurrent(t *testing.T) {
	cfg := testConfig([]DeviceSpec{{ID: "c", Preset: "A", Seed: 3}}, 1)
	cfg.Health.ProbeInterval = time.Millisecond // exercise prober shutdown
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	reqs := trace.Generate(trace.RWMixed, 1<<20, 8, 400)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, r := range reqs[g*100 : (g+1)*100] {
				if _, err := m.SubmitBatch([]Request{{DeviceID: "c", Op: r.Op, LBA: r.LBA, Sectors: r.Sectors}}); err != nil && !errors.Is(err, ErrManagerClosed) {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Close()
			// After any Close returns the fleet must reject work.
			if _, err := m.SubmitBatch([]Request{{DeviceID: "c", Op: blockdev.Read}}); !errors.Is(err, ErrManagerClosed) {
				t.Errorf("submit after Close: %v", err)
			}
		}()
	}
	wg.Wait()
	m.Close() // and again, for good measure
}

// TestPerRequestErrors: bad addressing fails only its own batch entry,
// with typed errors, while the rest of the batch is served.
func TestPerRequestErrors(t *testing.T) {
	m, err := New(testConfig([]DeviceSpec{{ID: "ok", Preset: "A", Seed: 21}}, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	res, err := m.SubmitBatch([]Request{
		{DeviceID: "ghost", Op: blockdev.Read, LBA: 0, Sectors: 8},
		{DeviceID: "ok", Op: blockdev.Write, LBA: 4096, Sectors: 8},
		{DeviceID: "ok", Op: blockdev.Read, LBA: -4, Sectors: 8},
	})
	if err != nil {
		t.Fatalf("batch-level error for per-request problems: %v", err)
	}
	if !errors.Is(res[0].Err, ErrUnknownDevice) || res[0].Error == "" {
		t.Errorf("unknown device: %+v", res[0])
	}
	if res[1].Err != nil || res[1].Latency <= 0 {
		t.Errorf("healthy entry not served: %+v", res[1])
	}
	if res[2].Err == nil {
		t.Errorf("negative LBA accepted: %+v", res[2])
	}
}
