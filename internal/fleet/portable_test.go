package fleet

import (
	"bytes"
	"strings"
	"testing"

	"ssdcheck/internal/obs"
)

// TestDetachAttachEquivalence: moving devices between managers halfway
// through a workload yields byte-identical per-device stats to an
// uninterrupted single-manager run — the property cluster failover is
// built on.
func TestDetachAttachEquivalence(t *testing.T) {
	const n = 1600
	devs := testSpecs()
	strs := streams(devs, n)

	base := marshalStats(t, runInterleaved(t, testConfig(devs, 2), strs, n))

	// Same workload, but dev-a and dev-f migrate to a second, initially
	// empty manager at the halfway point.
	src, err := New(testConfig(devs, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dstCfg := testConfig(nil, 2)
	dstCfg.AllowEmpty = true
	dstCfg.Shards = 2
	dst, err := New(dstCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	owner := map[string]*Manager{}
	for _, d := range devs {
		owner[d.ID] = src
	}
	for step := 0; step < n; step++ {
		if step == n/2 {
			for _, id := range []string{"dev-a", "dev-f"} {
				pd, err := src.Detach(id)
				if err != nil {
					t.Fatal(err)
				}
				if pd.ID() != id {
					t.Fatalf("portable handle ID %q, want %q", pd.ID(), id)
				}
				if err := dst.Attach(pd); err != nil {
					t.Fatal(err)
				}
				if pd.ID() != "" {
					t.Error("handle not spent after attach")
				}
				owner[id] = dst
			}
		}
		for _, d := range devs {
			r := strs[d.ID][step]
			res, err := owner[d.ID].Submit(d.ID, r.Op, r.LBA, r.Sectors)
			if err != nil {
				t.Fatal(err)
			}
			if res.DeviceID != d.ID {
				t.Fatalf("result for %q, want %q", res.DeviceID, d.ID)
			}
		}
	}

	// Reassemble the snapshots in the baseline's device order.
	byID := map[string]DeviceSnapshot{}
	for _, m := range []*Manager{src, dst} {
		for _, s := range m.Devices() {
			byID[s.ID] = s
		}
	}
	var merged []DeviceSnapshot
	for _, d := range devs {
		merged = append(merged, byID[d.ID])
	}
	got := marshalStats(t, merged)
	if !bytes.Equal(base, got) {
		t.Errorf("migrated run diverges from uninterrupted run\nbase: %s\ngot:  %s", base, got)
	}

	if ids := src.DeviceIDs(); len(ids) != 2 {
		t.Errorf("source still lists %v", ids)
	}
	if ids := dst.DeviceIDs(); len(ids) != 2 {
		t.Errorf("destination lists %v, want the two migrants", ids)
	}
}

// TestDetachAttachRegistries: a move withdraws the device's series from
// the old registry and republishes cumulative values in the new one.
func TestDetachAttachRegistries(t *testing.T) {
	const n = 300
	devs := testSpecs()[:2]
	strs := streams(devs, n)

	srcReg := obs.NewRegistry()
	cfg := testConfig(devs, 1)
	cfg.Registry = srcReg
	src, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for step := 0; step < n; step++ {
		for _, d := range devs {
			r := strs[d.ID][step]
			if _, err := src.Submit(d.ID, r.Op, r.LBA, r.Sectors); err != nil {
				t.Fatal(err)
			}
		}
	}
	before, _ := src.Device("dev-a")

	dstReg := obs.NewRegistry()
	dstCfg := testConfig(nil, 1)
	dstCfg.AllowEmpty = true
	dstCfg.Shards = 1
	dstCfg.Registry = dstReg
	dst, err := New(dstCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	pd, err := src.Detach("dev-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Attach(pd); err != nil {
		t.Fatal(err)
	}

	var old, fresh strings.Builder
	if err := srcReg.WritePrometheus(&old); err != nil {
		t.Fatal(err)
	}
	if err := dstReg.WritePrometheus(&fresh); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(old.String(), `device="dev-a"`) {
		t.Errorf("old registry still has dev-a series:\n%s", old.String())
	}
	if !strings.Contains(fresh.String(), `device="dev-a"`) {
		t.Error("new registry has no dev-a series")
	}

	after, ok := dst.Device("dev-a")
	if !ok {
		t.Fatal("dev-a missing from destination")
	}
	after.Shard = before.Shard
	if before != after {
		t.Errorf("snapshot changed across the move\nbefore: %+v\nafter:  %+v", before, after)
	}
	// The republished counter series land on the cumulative tallies.
	want := before.Counters.Reads + before.Counters.Writes + before.Counters.Trims
	var got int64
	for _, op := range []string{"read", "write", "trim"} {
		got += dstReg.Counter("ssdcheck_requests_total", "",
			obs.Label{Name: "device", Value: "dev-a"}, obs.Label{Name: "op", Value: op}).Value()
	}
	if got != want {
		t.Errorf("republished request counters = %d, want %d", got, want)
	}
	// The device serves on its new manager.
	r := strs["dev-a"][0]
	if _, err := dst.Submit("dev-a", r.Op, r.LBA, r.Sectors); err != nil {
		t.Fatal(err)
	}
}

func TestPortableErrors(t *testing.T) {
	m, err := New(testConfig(testSpecs()[:1], 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Detach("ghost"); err == nil {
		t.Error("detach of unknown device accepted")
	}
	pd, err := m.Detach("dev-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(pd); err != nil {
		t.Fatal(err) // re-attach to the same manager is legal
	}
	if err := m.Attach(pd); err == nil {
		t.Error("spent handle accepted")
	}
	pd2, err := m.Detach("dev-a")
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig(testSpecs()[:1], 1)
	m2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if err := m2.Attach(pd2); err == nil {
		t.Error("duplicate device ID accepted")
	}
	m.Close()
	if _, err := m.Detach("dev-a"); err == nil {
		t.Error("detach after Close accepted")
	}
	if err := m.Attach(pd2); err == nil {
		t.Error("attach after Close accepted")
	}
}

// TestEmptyManager: AllowEmpty stands up a deviceless fleet that
// reports sane metrics and accepts attaches.
func TestEmptyManager(t *testing.T) {
	cfg := Config{AllowEmpty: true, Shards: 2, Diagnosis: FastDiagnosis(), PreconditionFactor: 1.2}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	met := m.Metrics()
	if met.Devices != 0 || met.Counters.Requests != 0 {
		t.Errorf("empty fleet metrics: %+v", met)
	}
	if got := m.LatencyDigest(); got.Count != 0 {
		t.Errorf("empty fleet latency digest has %d samples", got.Count)
	}
	if _, err := New(Config{}); err == nil {
		t.Error("deviceless config without AllowEmpty accepted")
	}
}
