package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"sync"
	"testing"

	"ssdcheck/internal/blockdev"
	"ssdcheck/internal/faults"
	"ssdcheck/internal/trace"
)

// fastModel is a model policy with small budgets so unit tests walk
// the whole drift → fallback → re-diagnosis → calibrated cycle inside
// a few thousand requests.
func fastModel() ModelPolicy {
	return ModelPolicy{
		MinSamples:    64,
		FallbackAfter: 128,
		RediagAfter:   32,
		RediagBudget:  8,
	}
}

// segmentAccuracy computes HL and NL accuracy over a result range,
// using the same conventions as Counters (1 on an empty class).
func segmentAccuracy(results []Result) (hl, nl float64) {
	var hlSeen, hlHit, nlSeen, nlHit int
	for _, r := range results {
		if r.ObservedHL {
			hlSeen++
			if r.HL {
				hlHit++
			}
		} else {
			nlSeen++
			if !r.HL {
				nlHit++
			}
		}
	}
	hl, nl = 1, 1
	if hlSeen > 0 {
		hl = float64(hlHit) / float64(hlSeen)
	}
	if nlSeen > 0 {
		nl = float64(nlHit) / float64(nlSeen)
	}
	return hl, nl
}

// TestDriftFallbackRediagRecovery is the issue's acceptance scenario:
// a feature-shift fault (buffer quartered mid-run) silently invalidates
// a diagnosed preset-A model. The watchdog must walk calibrated →
// drifting → fallback → rediagnosing and hot-swap its way back to
// calibrated, with no request dropped or reordered, post-swap NL
// accuracy ≥ 0.95, and post-swap HL accuracy within 0.05 of the
// pre-fault baseline.
func TestDriftFallbackRediagRecovery(t *testing.T) {
	const n = 20000
	const faultAt = 1500
	if testing.Short() {
		t.Skip("recovery run is long")
	}

	cfg := testConfig([]DeviceSpec{{
		ID: "a", Preset: "A", Seed: 11,
		Faults: &faults.Config{Schedules: []faults.Schedule{{
			Kind:  faults.FeatureShift,
			At:    faultAt,
			Shift: &blockdev.FeatureShift{BufferScale: 0.5},
		}}},
	}}, 1)
	cfg.Model = fastModel()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	reqs := trace.Generate(trace.RWMixed, 1<<20, 101, n)
	results := make([]Result, 0, n)
	for i, r := range reqs {
		res, err := m.Submit("a", r.Op, r.LBA, r.Sectors)
		if err != nil {
			t.Fatalf("request %d failed: %v", i, err)
		}
		results = append(results, res)
	}

	// No request dropped, none reordered: exactly n results, each
	// completing strictly after its predecessor on the device clock —
	// including across the fallback window and the hot swap.
	if len(results) != n {
		t.Fatalf("served %d of %d requests", len(results), n)
	}
	for i := 1; i < n; i++ {
		if results[i].CompletedAt <= results[i-1].CompletedAt {
			t.Fatalf("request %d completed at %v, not after %v — reordering across the swap",
				i, results[i].CompletedAt, results[i-1].CompletedAt)
		}
	}

	// Fallback mode was actually served, flagged, and conservative.
	fallbacks := 0
	for i, r := range results {
		if r.Fallback {
			fallbacks++
			if r.HL {
				t.Fatalf("request %d: fallback prediction is HL, want conservative NL", i)
			}
		}
	}
	if fallbacks == 0 {
		t.Fatal("no request served in fallback mode")
	}

	rep, ok := m.DeviceModel("a")
	if !ok {
		t.Fatal("no model report")
	}
	if rep.ModelHealth != ModelCalibrated {
		t.Fatalf("device ends %v, want calibrated (transitions %+v)", rep.ModelHealth, rep.Transitions)
	}
	if rep.Rediags == 0 {
		t.Fatal("no re-diagnosis ran")
	}

	// The transition log must walk the full lifecycle in order.
	var recoveredSeq int64
	want := []ModelHealth{ModelDrifting, ModelFallback, ModelRediagnosing, ModelCalibrated}
	step := 0
	for _, tr := range rep.Transitions {
		if step < len(want) && tr.To == want[step] {
			step++
			if step == len(want) {
				recoveredSeq = tr.Seq
				if tr.Cause != "re-diagnosis pass" {
					t.Errorf("recovery edge cause %q, want re-diagnosis pass", tr.Cause)
				}
				break
			}
		}
	}
	if step != len(want) {
		t.Fatalf("lifecycle incomplete (reached step %d): %+v", step, rep.Transitions)
	}
	if recoveredSeq <= faultAt || recoveredSeq >= n {
		t.Fatalf("recovery at seq %d leaves no post-swap window (fault at %d, n %d)",
			recoveredSeq, faultAt, n)
	}

	// Accuracy: the rebuilt model must predict the shifted device as
	// well as the original model predicted the unshifted one.
	preHL, _ := segmentAccuracy(results[:faultAt])
	postHL, postNL := segmentAccuracy(results[recoveredSeq:])
	if postNL < 0.95 {
		t.Errorf("post-swap NL accuracy %.4f < 0.95", postNL)
	}
	if d := preHL - postHL; d > 0.05 {
		t.Errorf("post-swap HL accuracy %.4f more than 0.05 under pre-fault baseline %.4f", postHL, preHL)
	}

	// The fallback window itself must have collapsed accuracy — that
	// is what the machinery detected.
	if midHL, _ := segmentAccuracy(results[faultAt:recoveredSeq]); midHL >= preHL {
		t.Errorf("fault window HL accuracy %.4f did not collapse below baseline %.4f", midHL, preHL)
	}

	met := m.Metrics()
	if met.Counters.Fallback != int64(fallbacks) || met.Counters.Rediags != int64(rep.Rediags) {
		t.Errorf("fleet counters disagree with results: %+v vs fallbacks=%d rediags=%d",
			met.Counters, fallbacks, rep.Rediags)
	}
}

// TestModelLogDeterminism: the model-health transition log is a
// deterministic function of the per-device request streams and fault
// schedules — byte-identical across shard counts 1 and 8.
func TestModelLogDeterminism(t *testing.T) {
	const n = 6000
	specs := func() []DeviceSpec {
		devs := []DeviceSpec{
			{ID: "m0", Preset: "A", Seed: 11},
			{ID: "m1", Preset: "D", Seed: 22},
			{ID: "m2", Preset: "F", Seed: 33},
			{ID: "m3", Preset: "H", Seed: 44},
			{ID: "m4", Preset: "A", Seed: 55},
			{ID: "m5", Preset: "D", Seed: 66},
			{ID: "m6", Preset: "F", Seed: 77},
			{ID: "m7", Preset: "A", Seed: 88},
		}
		devs[0].Faults = &faults.Config{Schedules: []faults.Schedule{
			{Kind: faults.FeatureShift, At: 500, Shift: &blockdev.FeatureShift{BufferScale: 0.25}},
		}}
		devs[2].Faults = &faults.Config{Schedules: []faults.Schedule{
			{Kind: faults.FeatureShift, At: 900, Shift: &blockdev.FeatureShift{ToggleReadTrigger: true}},
		}}
		devs[4].Faults = &faults.Config{Seed: 5, Schedules: []faults.Schedule{
			{Kind: faults.FeatureShift, Prob: 0.001, Shift: &blockdev.FeatureShift{BufferScale: 0.2}},
			{Kind: faults.Transient, Prob: 0.005},
		}}
		devs[7].Faults = &faults.Config{Schedules: []faults.Schedule{
			{Kind: faults.Drift, At: 1200, Factor: 1.5},
		}}
		return devs
	}
	strs := streams(specs(), n)

	modelLog := func(shards int) []byte {
		cfg := testConfig(specs(), shards)
		cfg.Model = fastModel()
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		ids := make([]string, 0, len(cfg.Devices))
		for _, d := range cfg.Devices {
			ids = append(ids, d.ID)
		}
		driveSequential(t, m, strs, ids, n)
		b, err := json.MarshalIndent(m.ModelLog(), "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	base := modelLog(1)
	if !bytes.Contains(base, []byte(`"fallback"`)) {
		t.Fatalf("schedules produced no fallback — test is vacuous:\n%s", base)
	}
	for _, shards := range []int{1, 8} {
		if got := modelLog(shards); !bytes.Equal(base, got) {
			t.Errorf("model log diverges at shards=%d\nbase: %s\ngot:  %s", shards, base, got)
		}
	}
}

// TestDriftRecoverySoak is the CI soak: every device carries a
// mid-run feature-shift fault, each is driven from its own goroutine
// while metrics and model readers poll concurrently, and the fleet
// must end with every request served and every device re-calibrated.
// Run under -race at GOMAXPROCS 1 and 4.
func TestDriftRecoverySoak(t *testing.T) {
	const n = 9000
	if testing.Short() {
		t.Skip("soak is long")
	}
	// Back-buffered presets drift when the buffer halves and recover
	// through re-diagnosis. Presets whose post-shift shape the extract
	// pipeline cannot identify (e.g. fore buffer with the read trigger
	// off) are covered by TestRediagFailureContainment instead — their
	// correct end state is fallback, not recovery.
	devs := []DeviceSpec{
		{ID: "dev-a", Preset: "A", Seed: 11},
		{ID: "dev-c", Preset: "C", Seed: 22},
		{ID: "dev-d", Preset: "D", Seed: 33},
		{ID: "dev-a2", Preset: "A", Seed: 44},
	}
	for i := range devs {
		devs[i].Faults = &faults.Config{Schedules: []faults.Schedule{{
			Kind:  faults.FeatureShift,
			At:    int64(600 + i*150),
			Shift: &blockdev.FeatureShift{BufferScale: 0.5},
		}}}
	}
	strs := streams(devs, n)
	cfg := testConfig(devs, 3)
	cfg.Model = fastModel()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.Metrics()
			m.ModelLog()
			m.DeviceModel("dev-a")
		}
	}()

	var wg sync.WaitGroup
	for _, d := range devs {
		wg.Add(1)
		go func(id string, reqs []blockdev.Request) {
			defer wg.Done()
			const chunk = 64
			for off := 0; off < len(reqs); off += chunk {
				end := off + chunk
				if end > len(reqs) {
					end = len(reqs)
				}
				batch := make([]Request, 0, end-off)
				for _, r := range reqs[off:end] {
					batch = append(batch, Request{DeviceID: id, Op: r.Op, LBA: r.LBA, Sectors: r.Sectors})
				}
				res, err := m.SubmitBatch(batch)
				if err != nil {
					t.Error(err)
					return
				}
				for _, r := range res {
					if r.Err != nil {
						t.Errorf("%s: request failed mid-soak: %v", id, r.Err)
						return
					}
				}
			}
		}(d.ID, strs[d.ID])
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	for _, d := range devs {
		snap, _ := m.Device(d.ID)
		if snap.Counters.Requests != n {
			t.Errorf("%s served %d of %d requests", d.ID, snap.Counters.Requests, n)
		}
		rep, _ := m.DeviceModel(d.ID)
		if rep.ModelHealth != ModelCalibrated {
			t.Errorf("%s ends %v, want calibrated (transitions %+v)", d.ID, rep.ModelHealth, rep.Transitions)
		}
		if rep.Rediags == 0 {
			t.Errorf("%s never re-diagnosed (transitions %+v)", d.ID, rep.Transitions)
		}
		if snap.Counters.Fallback == 0 {
			t.Errorf("%s served nothing in fallback mode", d.ID)
		}
	}
}

// TestRediagFailureContainment: a shift that moves the device outside
// model coverage — a fore buffer with its read trigger off is not
// identifiable by the paper's Algorithm 1 — must not recover by
// inventing a model. Re-diagnosis honestly fails, the retry budget
// (MaxRediags) caps the probe churn, and the device is held serving
// conservative fallback predictions indefinitely.
func TestRediagFailureContainment(t *testing.T) {
	const n = 7000
	if testing.Short() {
		t.Skip("containment run is long")
	}
	cfg := testConfig([]DeviceSpec{{
		ID: "f", Preset: "F", Seed: 44,
		Faults: &faults.Config{Schedules: []faults.Schedule{{
			Kind:  faults.FeatureShift,
			At:    1000,
			Shift: &blockdev.FeatureShift{ToggleReadTrigger: true, BufferScale: 0.25},
		}}},
	}}, 1)
	cfg.Model = fastModel()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	reqs := trace.Generate(trace.RWMixed, 1<<20, 909, n)
	for i, r := range reqs {
		res, err := m.Submit("f", r.Op, r.LBA, r.Sectors)
		if err != nil {
			t.Fatalf("request %d failed: %v", i, err)
		}
		if res.Fallback && res.HL {
			t.Fatalf("request %d: fallback prediction is HL", i)
		}
	}

	rep, ok := m.DeviceModel("f")
	if !ok {
		t.Fatal("no model report")
	}
	if rep.ModelHealth != ModelFallback {
		t.Fatalf("device ends %v, want fallback (transitions %+v)", rep.ModelHealth, rep.Transitions)
	}
	if want := cfg.Model.withDefaults().MaxRediags; rep.Rediags != want {
		t.Errorf("rediags %d, want retry budget %d", rep.Rediags, want)
	}
	fails := 0
	for _, tr := range rep.Transitions {
		if tr.Cause == "re-diagnosis fail" {
			fails++
		}
	}
	if fails != rep.Rediags {
		t.Errorf("%d re-diagnosis fail edges for %d rediags: %+v", fails, rep.Rediags, rep.Transitions)
	}
	// The retry budget is spent: the log's last edge returns to
	// fallback and the device no longer burns probe traffic.
	if last := rep.Transitions[len(rep.Transitions)-1]; last.To != ModelFallback {
		t.Errorf("last transition %+v, want return to fallback", last)
	}
	snap, _ := m.Device("f")
	if snap.Counters.Requests != n {
		t.Errorf("served %d of %d requests", snap.Counters.Requests, n)
	}
}

// TestRediagnoseOperator: the forced re-diagnosis path hot-swaps a
// fresh predictor on demand, logs the operator edge, and keeps serving
// afterwards; unknown and quarantined devices are rejected with typed
// errors.
func TestRediagnoseOperator(t *testing.T) {
	cfg := testConfig([]DeviceSpec{{ID: "op", Preset: "A", Seed: 17}}, 1)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	for i := 0; i < 50; i++ {
		if _, err := m.Submit("op", blockdev.Write, int64(i)*4096, 8); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := m.Device("op")

	if err := m.Rediagnose("op"); err != nil {
		t.Fatalf("forced re-diagnosis failed: %v", err)
	}
	rep, _ := m.DeviceModel("op")
	if rep.ModelHealth != ModelCalibrated || rep.Rediags != 1 {
		t.Fatalf("after forced rediag: %+v", rep)
	}
	if len(rep.Transitions) != 2 ||
		rep.Transitions[0].To != ModelRediagnosing || rep.Transitions[0].Cause != "operator request" ||
		rep.Transitions[1].To != ModelCalibrated {
		t.Fatalf("transition log %+v, want operator request → calibrated", rep.Transitions)
	}

	// The swap preserved service: the clock advanced (probes ran) and
	// requests still complete with live (non-fallback) predictions.
	after, _ := m.Device("op")
	if after.Clock <= before.Clock {
		t.Error("re-diagnosis probes did not advance the device clock")
	}
	res, err := m.Submit("op", blockdev.Read, 8192, 8)
	if err != nil || res.Fallback {
		t.Errorf("post-rediag request: err=%v fallback=%v", err, res.Fallback)
	}

	if err := m.Rediagnose("ghost"); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("unknown device: %v", err)
	}
}

// TestRediagnoseQuarantined: a device out of service cannot be probed.
func TestRediagnoseQuarantined(t *testing.T) {
	cfg := testConfig([]DeviceSpec{{
		ID: "dead", Preset: "A", Seed: 19,
		Faults: &faults.Config{Schedules: []faults.Schedule{{Kind: faults.FailStop, At: 5}}},
	}}, 1)
	cfg.Health = tightHealth()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	for i := 0; i < 20; i++ {
		m.Submit("dead", blockdev.Write, int64(i)*4096, 8)
	}
	if snap, _ := m.Device("dead"); snap.Health != Quarantined {
		t.Fatalf("device not quarantined: %v", snap.Health)
	}
	if err := m.Rediagnose("dead"); !errors.Is(err, ErrDeviceQuarantined) {
		t.Errorf("quarantined rediagnosis: %v", err)
	}
}

// TestModelHealthJSON: states round-trip through their wire names.
func TestModelHealthJSON(t *testing.T) {
	for _, h := range []ModelHealth{ModelCalibrated, ModelDrifting, ModelFallback, ModelRediagnosing} {
		b, err := json.Marshal(h)
		if err != nil {
			t.Fatal(err)
		}
		var got ModelHealth
		if err := json.Unmarshal(b, &got); err != nil || got != h {
			t.Errorf("round trip %v: got %v err %v", h, got, err)
		}
	}
	var bad ModelHealth
	if err := json.Unmarshal([]byte(`"nope"`), &bad); err == nil {
		t.Error("unknown state accepted")
	}
	if s := ModelHealth(9).String(); s != "modelhealth(9)" {
		t.Errorf("out-of-range String: %q", s)
	}
}

// TestModelPolicyValidate rejects malformed model policies.
func TestModelPolicyValidate(t *testing.T) {
	bad := []ModelPolicy{
		{FloorHL: 1.5},
		{FloorHL: -0.1},
		{RecoverAboveHL: 2},
		{FloorHL: 0.8, RecoverAboveHL: 0.5},
		{MinSamples: -1},
		{FallbackAfter: -1},
		{RediagBudget: -1},
		{MaxRediags: -1},
	}
	for i, p := range bad {
		cfg := testConfig([]DeviceSpec{{ID: "x", Preset: "A"}}, 1)
		cfg.Model = p
		if err := cfg.Validate(); err == nil {
			t.Errorf("policy %d accepted: %+v", i, p)
		}
	}
	// Negative RediagAfter is valid: it disables automatic rediagnosis.
	cfg := testConfig([]DeviceSpec{{ID: "x", Preset: "A"}}, 1)
	cfg.Model = ModelPolicy{RediagAfter: -1}
	if err := cfg.Validate(); err != nil {
		t.Errorf("RediagAfter=-1 rejected: %v", err)
	}
}

// TestModelDisabled: with the machine off, a collapsing model never
// leaves calibrated and keeps serving live predictions.
func TestModelDisabled(t *testing.T) {
	cfg := testConfig([]DeviceSpec{{
		ID: "off", Preset: "A", Seed: 23,
		Faults: &faults.Config{Schedules: []faults.Schedule{{
			Kind: faults.FeatureShift, At: 200, Shift: &blockdev.FeatureShift{BufferScale: 0.25},
		}}},
	}}, 1)
	cfg.Model = ModelPolicy{Disabled: true}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	reqs := trace.Generate(trace.RWMixed, 1<<20, 7, 4000)
	for _, r := range reqs {
		res, err := m.Submit("off", r.Op, r.LBA, r.Sectors)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fallback {
			t.Fatal("fallback served with the model machine disabled")
		}
	}
	rep, _ := m.DeviceModel("off")
	if rep.ModelHealth != ModelCalibrated || len(rep.Transitions) != 0 {
		t.Errorf("disabled machine moved: %+v", rep)
	}
}

// TestModelReportAccuracyFields: the report's window accuracies come
// from the predictor's live drift windows and stay in [0, 1].
func TestModelReportAccuracyFields(t *testing.T) {
	m, err := New(testConfig([]DeviceSpec{{ID: "w", Preset: "A", Seed: 29}}, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	reqs := trace.Generate(trace.RWMixed, 1<<20, 31, 3000)
	for _, r := range reqs {
		if _, err := m.Submit("w", r.Op, r.LBA, r.Sectors); err != nil {
			t.Fatal(err)
		}
	}
	rep, _ := m.DeviceModel("w")
	for name, v := range map[string]float64{"hl": rep.HLAccuracy, "nl": rep.NLAccuracy} {
		if math.IsNaN(v) || v < 0 || v > 1 {
			t.Errorf("%s accuracy out of range: %v", name, v)
		}
	}
	if !rep.PredictorEnabled {
		t.Error("healthy predictor reported disabled")
	}
	if rep.HLWindow < 0 || rep.DistResets != 0 {
		t.Errorf("window fields: %+v", rep)
	}
}
